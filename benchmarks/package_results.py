"""Package ``benchmarks/results/`` into a validated run package.

Collects every JSON artifact the benchmark harness emitted (tables, timing
documents, the session wall-time ledger), lifts the measured speedup factors
into KPIs named ``<bench>:<label>``, and writes a digest-pinned run package
(:mod:`repro.runpkg`).  ``tpms-energy validate-run`` over the package then
acts as a CI regression gate: a tampered artifact, a missing file or a
speedup sliding under its floor all fail with a one-line reason::

    python benchmarks/package_results.py --package benchmarks/results/package \\
        --floor fleet_throughput:fleet_vs_naive=2 \\
        --floor vectorized_speedup:vectorized_vs_scalar=3
    tpms-energy validate-run benchmarks/results/package
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.runpkg import write_run_package  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


def _parse_floors(entries: list[str]) -> dict[str, float]:
    floors: dict[str, float] = {}
    for entry in entries:
        name, separator, value = entry.partition("=")
        if not separator or not name.strip():
            raise SystemExit(f"malformed --floor {entry!r}; expected NAME=MIN")
        floors[name.strip()] = float(value)
    return floors


def collect_kpis(results_dir: Path) -> dict[str, float]:
    """Speedup KPIs (``<bench>:<label>``) from every ``*.timing.json``."""
    kpis: dict[str, float] = {}
    for path in sorted(results_dir.glob("*.timing.json")):
        document = json.loads(path.read_text(encoding="utf-8"))
        bench = document.get("bench") or path.name.removesuffix(".timing.json")
        for label, speedup in (document.get("speedups") or {}).items():
            # Degenerate timings serialize as null — not a KPI.
            if isinstance(speedup, (int, float)) and math.isfinite(speedup):
                kpis[f"{bench}:{label}"] = float(speedup)
    return kpis


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        default=str(RESULTS_DIR),
        metavar="DIR",
        help="benchmark results directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--package",
        default=str(RESULTS_DIR / "package"),
        metavar="DIR",
        help="run package output directory",
    )
    parser.add_argument(
        "--floor",
        dest="floors",
        action="append",
        default=[],
        metavar="NAME=MIN",
        help="minimum acceptable value for a speedup KPI (repeatable)",
    )
    args = parser.parse_args(argv)

    results_dir = Path(args.results)
    package_dir = Path(args.package)
    artifacts = {
        path.name: path
        for path in sorted(results_dir.glob("*.json"))
        if path.parent == results_dir
    }
    if not artifacts:
        print(f"error: no JSON artifacts in {results_dir}; run the benchmarks first",
              file=sys.stderr)
        return 1
    kpis = collect_kpis(results_dir)
    try:
        manifest_path = write_run_package(
            package_dir,
            kind="benchmarks",
            name="benchmark-results",
            kpis=kpis,
            floors=_parse_floors(args.floors),
            artifacts=artifacts,
            extra={"source": str(results_dir)},
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"wrote run package {manifest_path.parent}: {len(artifacts)} artifact(s), "
        f"{len(kpis)} KPI(s), {len(args.floors)} floor(s)"
    )
    for name, value in sorted(kpis.items()):
        print(f"  {name} = {value:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
