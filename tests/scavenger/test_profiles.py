"""Tests for tabulated scavenger profiles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scavenger.piezoelectric import PiezoelectricScavenger
from repro.scavenger.profiles import TabulatedScavenger


def simple_table(**overrides):
    parameters = dict(
        speeds_kmh=(10.0, 50.0, 100.0, 200.0),
        energies_j=(5e-6, 50e-6, 150e-6, 300e-6),
        minimum_speed_kmh=0.0,
    )
    parameters.update(overrides)
    return TabulatedScavenger(**parameters)


class TestInterpolation:
    def test_exact_sample_points(self):
        table = simple_table()
        assert table.energy_per_revolution_j(50.0) == pytest.approx(50e-6)

    def test_linear_interpolation_between_points(self):
        table = simple_table()
        assert table.energy_per_revolution_j(75.0) == pytest.approx(100e-6)

    def test_clamped_outside_range_by_default(self):
        table = simple_table()
        assert table.energy_per_revolution_j(500.0) == pytest.approx(300e-6)

    def test_extrapolation_when_enabled(self):
        table = simple_table(extrapolate=True)
        assert table.energy_per_revolution_j(250.0) > 300e-6

    def test_extrapolation_never_negative(self):
        table = TabulatedScavenger(
            speeds_kmh=(50.0, 100.0),
            energies_j=(100e-6, 10e-6),
            extrapolate=True,
            minimum_speed_kmh=0.0,
        )
        assert table.energy_per_revolution_j(300.0) == 0.0

    def test_cut_in_speed_still_applies(self):
        table = simple_table(minimum_speed_kmh=30.0)
        assert table.energy_per_revolution_j(20.0) == 0.0

    def test_size_scaling(self):
        table = simple_table()
        assert table.scaled(3.0).energy_per_revolution_j(100.0) == pytest.approx(450e-6)


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulatedScavenger(speeds_kmh=(10.0, 20.0), energies_j=(1e-6,))

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulatedScavenger(speeds_kmh=(10.0,), energies_j=(1e-6,))

    def test_non_increasing_speeds_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulatedScavenger(speeds_kmh=(10.0, 10.0), energies_j=(1e-6, 2e-6))

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulatedScavenger(speeds_kmh=(10.0, 20.0), energies_j=(1e-6, -2e-6))


class TestFromScavenger:
    def test_sampling_reproduces_the_source_at_sample_points(self):
        source = PiezoelectricScavenger()
        table = TabulatedScavenger.from_scavenger(source, [20.0, 60.0, 120.0])
        for speed in (20.0, 60.0, 120.0):
            assert table.energy_per_revolution_j(speed) == pytest.approx(
                source.energy_per_revolution_j(speed)
            )

    def test_sampling_preserves_cut_in(self):
        source = PiezoelectricScavenger(minimum_speed_kmh=12.0)
        table = TabulatedScavenger.from_scavenger(source, [20.0, 60.0, 120.0])
        assert table.minimum_speed_kmh == 12.0
        assert table.energy_per_revolution_j(5.0) == 0.0

    def test_interpolation_error_is_small(self):
        source = PiezoelectricScavenger()
        table = TabulatedScavenger.from_scavenger(source, list(range(5, 205, 5)))
        for speed in (23.0, 67.0, 133.0):
            assert table.energy_per_revolution_j(speed) == pytest.approx(
                source.energy_per_revolution_j(speed), rel=0.02
            )
