"""Tests for the harvester models (piezo, electromagnetic, electrostatic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scavenger.electromagnetic import ElectromagneticScavenger
from repro.scavenger.electrostatic import ElectrostaticScavenger
from repro.scavenger.piezoelectric import PiezoelectricScavenger

ALL_SCAVENGERS = [
    PiezoelectricScavenger,
    ElectromagneticScavenger,
    ElectrostaticScavenger,
]


@pytest.mark.parametrize("scavenger_type", ALL_SCAVENGERS)
class TestCommonBehaviour:
    def test_zero_below_cut_in_speed(self, scavenger_type):
        scavenger = scavenger_type()
        below = max(0.0, scavenger.minimum_speed_kmh - 1.0)
        assert scavenger.energy_per_revolution_j(below) == 0.0

    def test_zero_at_standstill(self, scavenger_type):
        assert scavenger_type().energy_per_revolution_j(0.0) == 0.0

    def test_negative_speed_rejected(self, scavenger_type):
        with pytest.raises(ConfigurationError):
            scavenger_type().energy_per_revolution_j(-10.0)

    def test_energy_grows_with_speed(self, scavenger_type):
        scavenger = scavenger_type()
        speeds = (20.0, 40.0, 80.0, 160.0)
        energies = [scavenger.energy_per_revolution_j(v) for v in speeds]
        assert energies == sorted(energies)
        assert energies[-1] > energies[0]

    def test_energy_saturates(self, scavenger_type):
        scavenger = scavenger_type()
        assert scavenger.energy_per_revolution_j(400.0) <= scavenger.saturation_energy_j

    def test_size_scaling_is_linear(self, scavenger_type):
        scavenger = scavenger_type()
        doubled = scavenger.scaled(2.0)
        assert doubled.energy_per_revolution_j(80.0) == pytest.approx(
            2.0 * scavenger.energy_per_revolution_j(80.0)
        )

    def test_scaled_rejects_non_positive_factor(self, scavenger_type):
        with pytest.raises(ConfigurationError):
            scavenger_type().scaled(0.0)

    def test_average_power_is_energy_times_rev_rate(self, scavenger_type):
        scavenger = scavenger_type()
        speed = 90.0
        expected = scavenger.energy_per_revolution_j(
            speed
        ) * scavenger.wheel.revolutions_per_second(speed)
        assert scavenger.average_power_w(speed) == pytest.approx(expected)

    def test_average_power_zero_at_standstill(self, scavenger_type):
        assert scavenger_type().average_power_w(0.0) == 0.0

    def test_energy_curve_matches_pointwise(self, scavenger_type):
        scavenger = scavenger_type()
        speeds = np.array([10.0, 50.0, 100.0])
        curve = scavenger.energy_curve(speeds)
        for value, speed in zip(curve, speeds):
            assert value == pytest.approx(scavenger.energy_per_revolution_j(float(speed)))

    def test_describe_mentions_technology(self, scavenger_type):
        scavenger = scavenger_type()
        assert scavenger.technology.split()[0] in scavenger.describe()

    def test_invalid_reference_parameters_rejected(self, scavenger_type):
        with pytest.raises(ConfigurationError):
            scavenger_type(reference_energy_j=0.0)
        with pytest.raises(ConfigurationError):
            scavenger_type(exponent=0.0)


class TestRelativeMagnitudes:
    def test_piezo_reference_magnitude_is_tens_of_microjoules(self):
        energy = PiezoelectricScavenger().energy_per_revolution_j(60.0)
        assert 20e-6 <= energy <= 300e-6

    def test_electrostatic_is_the_weakest_option(self):
        speed = 100.0
        electrostatic = ElectrostaticScavenger().energy_per_revolution_j(speed)
        piezo = PiezoelectricScavenger().energy_per_revolution_j(speed)
        electromagnetic = ElectromagneticScavenger().energy_per_revolution_j(speed)
        assert electrostatic < piezo
        assert electrostatic < electromagnetic

    def test_electromagnetic_has_higher_cut_in(self):
        assert (
            ElectromagneticScavenger().minimum_speed_kmh
            > PiezoelectricScavenger().minimum_speed_kmh
        )

    def test_average_power_at_highway_speed_is_sub_ten_milliwatt(self):
        for scavenger_type in ALL_SCAVENGERS:
            assert scavenger_type().average_power_w(130.0) < 10e-3
