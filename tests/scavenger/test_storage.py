"""Tests for the storage-element model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, EmulationError
from repro.scavenger.storage import StorageElement, supercapacitor, thin_film_battery


def ideal_storage(**overrides):
    parameters = dict(
        capacity_j=1.0,
        initial_charge_j=0.5,
        charge_efficiency=1.0,
        discharge_efficiency=1.0,
        self_discharge_w=0.0,
        minimum_operating_j=0.05,
        restart_level_j=0.10,
    )
    parameters.update(overrides)
    return StorageElement(**parameters)


class TestDeposit:
    def test_deposit_increases_charge(self):
        storage = ideal_storage()
        stored = storage.deposit(0.1)
        assert stored == pytest.approx(0.1)
        assert storage.charge_j == pytest.approx(0.6)

    def test_charge_efficiency_applies(self):
        storage = ideal_storage(charge_efficiency=0.9)
        stored = storage.deposit(0.1)
        assert stored == pytest.approx(0.09)

    def test_deposit_clips_at_capacity(self):
        storage = ideal_storage(initial_charge_j=0.95)
        stored = storage.deposit(0.2)
        assert stored == pytest.approx(0.05)
        assert storage.charge_j == pytest.approx(1.0)

    def test_deposit_negative_rejected(self):
        with pytest.raises(EmulationError):
            ideal_storage().deposit(-0.1)


class TestWithdraw:
    def test_withdraw_decreases_charge(self):
        storage = ideal_storage()
        assert storage.withdraw(0.2)
        assert storage.charge_j == pytest.approx(0.3)

    def test_discharge_efficiency_increases_draw(self):
        storage = ideal_storage(discharge_efficiency=0.5)
        assert storage.withdraw(0.1)
        assert storage.charge_j == pytest.approx(0.3)

    def test_shortfall_returns_false_and_drains(self):
        storage = ideal_storage(initial_charge_j=0.1)
        assert not storage.withdraw(0.5)
        assert storage.charge_j == 0.0

    def test_withdraw_negative_rejected(self):
        with pytest.raises(EmulationError):
            ideal_storage().withdraw(-0.1)


class TestLeakAndState:
    def test_self_discharge(self):
        storage = ideal_storage(self_discharge_w=1e-3)
        loss = storage.leak(100.0)
        assert loss == pytest.approx(0.1)
        assert storage.charge_j == pytest.approx(0.4)

    def test_leak_cannot_go_negative(self):
        storage = ideal_storage(initial_charge_j=0.001, self_discharge_w=1.0)
        storage.leak(100.0)
        assert storage.charge_j == 0.0

    def test_leak_rejects_negative_duration(self):
        with pytest.raises(EmulationError):
            ideal_storage().leak(-1.0)

    def test_state_of_charge(self):
        assert ideal_storage().state_of_charge == pytest.approx(0.5)

    def test_depletion_and_restart_hysteresis(self):
        storage = ideal_storage(initial_charge_j=0.06)
        assert not storage.is_depleted
        storage.withdraw(0.03)
        assert storage.is_depleted
        assert not storage.can_restart
        storage.deposit(0.08)
        assert storage.can_restart

    def test_reset_restores_initial_charge(self):
        storage = ideal_storage()
        storage.withdraw(0.4)
        storage.reset()
        assert storage.charge_j == pytest.approx(0.5)


class TestValidation:
    def test_initial_charge_must_fit_capacity(self):
        with pytest.raises(ConfigurationError):
            ideal_storage(initial_charge_j=2.0)

    def test_restart_level_must_exceed_minimum(self):
        with pytest.raises(ConfigurationError):
            ideal_storage(minimum_operating_j=0.2, restart_level_j=0.1)

    def test_restart_level_must_fit_capacity(self):
        with pytest.raises(ConfigurationError):
            ideal_storage(restart_level_j=2.0)

    def test_efficiencies_must_be_valid(self):
        with pytest.raises(ConfigurationError):
            ideal_storage(charge_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            ideal_storage(discharge_efficiency=1.5)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ideal_storage(capacity_j=0.0)


class TestFactories:
    def test_supercapacitor_defaults(self):
        storage = supercapacitor()
        assert storage.name == "supercapacitor"
        assert storage.charge_j == pytest.approx(0.25 * 0.4)

    def test_thin_film_battery_is_larger(self):
        assert thin_film_battery().capacity_j > supercapacitor().capacity_j

    def test_supercapacitor_leaks_more_than_battery(self):
        assert supercapacitor().self_discharge_w > thin_film_battery().self_discharge_w

    def test_initial_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            supercapacitor(initial_fraction=1.5)
        with pytest.raises(ConfigurationError):
            thin_film_battery(initial_fraction=-0.1)
