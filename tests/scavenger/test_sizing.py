"""Tests for scavenger sizing against an activation-speed target."""

from __future__ import annotations

import pytest

from repro.core.balance import EnergyBalanceAnalysis
from repro.errors import AnalysisError
from repro.scavenger.sizing import size_for_activation_speed, sizing_table


class TestSizeForActivationSpeed:
    def test_sized_device_meets_the_target(self, node, database, scavenger):
        target = 30.0
        result = size_for_activation_speed(node, database, scavenger, target)
        assert result.feasible
        assert result.achieved_break_even_kmh <= target + 1.0

    def test_size_is_minimal_to_first_order(self, node, database, scavenger):
        """A device 10% smaller than the computed size misses the target."""
        target = 30.0
        result = size_for_activation_speed(node, database, scavenger, target)
        undersized = EnergyBalanceAnalysis(
            node, database, scavenger.scaled(result.size_factor * 0.9)
        ).break_even_speed_kmh()
        assert undersized > target

    def test_easier_targets_need_smaller_devices(self, node, database, scavenger):
        relaxed = size_for_activation_speed(node, database, scavenger, 80.0)
        strict = size_for_activation_speed(node, database, scavenger, 30.0)
        assert relaxed.size_factor < strict.size_factor

    def test_target_below_cut_in_is_infeasible(self, node, database, scavenger):
        result = size_for_activation_speed(
            node, database, scavenger, scavenger.minimum_speed_kmh * 0.5
        )
        assert not result.feasible
        assert result.size_factor is None

    def test_size_limit_makes_aggressive_targets_infeasible(self, node, database, scavenger):
        result = size_for_activation_speed(
            node, database, scavenger, 10.0, max_size_factor=1.5
        )
        assert not result.feasible

    def test_requirement_and_generation_are_reported(self, node, database, scavenger):
        result = size_for_activation_speed(node, database, scavenger, 40.0)
        assert result.required_energy_j > 0.0
        assert result.generated_energy_unit_j > 0.0
        # Consistency: size ~= required / generated (within the safety margin).
        assert result.size_factor == pytest.approx(
            result.required_energy_j / result.generated_energy_unit_j, rel=0.05
        )

    def test_invalid_inputs_rejected(self, node, database, scavenger):
        with pytest.raises(AnalysisError):
            size_for_activation_speed(node, database, scavenger, 0.0)
        with pytest.raises(AnalysisError):
            size_for_activation_speed(node, database, scavenger, 30.0, max_size_factor=0.0)


class TestSizingTable:
    def test_one_row_per_target(self, node, database, scavenger):
        rows = sizing_table(node, database, scavenger, [30.0, 50.0, 80.0])
        assert len(rows) == 3
        assert [row["target_speed_kmh"] for row in rows] == [30.0, 50.0, 80.0]

    def test_sizes_decrease_with_relaxed_targets(self, node, database, scavenger):
        rows = sizing_table(node, database, scavenger, [30.0, 50.0, 80.0])
        sizes = [row["size_factor"] for row in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_empty_targets_rejected(self, node, database, scavenger):
        with pytest.raises(AnalysisError):
            sizing_table(node, database, scavenger, [])
