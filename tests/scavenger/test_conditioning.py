"""Tests for the power-conditioning chain."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scavenger.conditioning import (
    ConditionedScavenger,
    PowerConditioning,
    conditioned,
)
from repro.scavenger.piezoelectric import PiezoelectricScavenger


class TestPowerConditioning:
    def test_chain_efficiency_is_product(self):
        chain = PowerConditioning(rectifier_efficiency=0.8, converter_efficiency=0.9)
        assert chain.chain_efficiency == pytest.approx(0.72)

    def test_banked_energy_subtracts_overhead(self):
        chain = PowerConditioning(
            rectifier_efficiency=1.0, converter_efficiency=1.0, startup_energy_j=1e-6
        )
        assert chain.banked_energy_j(10e-6) == pytest.approx(9e-6)

    def test_banked_energy_floors_at_zero(self):
        chain = PowerConditioning(startup_energy_j=5e-6)
        assert chain.banked_energy_j(1e-6) == 0.0

    def test_zero_harvest_banks_zero(self):
        assert PowerConditioning().banked_energy_j(0.0) == 0.0

    def test_negative_harvest_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerConditioning().banked_energy_j(-1.0)

    def test_invalid_efficiencies_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerConditioning(rectifier_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            PowerConditioning(converter_efficiency=1.5)
        with pytest.raises(ConfigurationError):
            PowerConditioning(startup_energy_j=-1.0)


class TestConditionedScavenger:
    def test_banked_energy_is_below_raw_energy(self):
        source = PiezoelectricScavenger()
        wrapped = conditioned(source)
        speed = 90.0
        assert wrapped.energy_per_revolution_j(speed) < source.energy_per_revolution_j(speed)

    def test_monotonicity_is_preserved(self):
        wrapped = conditioned(PiezoelectricScavenger())
        energies = [wrapped.energy_per_revolution_j(v) for v in (20.0, 60.0, 120.0)]
        assert energies == sorted(energies)

    def test_zero_below_source_cut_in(self):
        source = PiezoelectricScavenger(minimum_speed_kmh=15.0)
        wrapped = conditioned(source)
        assert wrapped.energy_per_revolution_j(10.0) == 0.0

    def test_technology_mentions_conditioning(self):
        assert "conditioning" in conditioned(PiezoelectricScavenger()).technology

    def test_scaling_scales_the_source(self):
        wrapped = conditioned(PiezoelectricScavenger())
        doubled = wrapped.scaled(2.0)
        assert isinstance(doubled, ConditionedScavenger)
        assert doubled.energy_per_revolution_j(80.0) > 1.9 * wrapped.energy_per_revolution_j(80.0)

    def test_requires_a_source(self):
        with pytest.raises(ConfigurationError):
            ConditionedScavenger(source=None)

    def test_perfect_chain_with_no_overhead_is_identity(self):
        source = PiezoelectricScavenger()
        wrapped = conditioned(
            source,
            PowerConditioning(
                rectifier_efficiency=1.0, converter_efficiency=1.0, startup_energy_j=0.0
            ),
        )
        assert wrapped.energy_per_revolution_j(70.0) == pytest.approx(
            source.energy_per_revolution_j(70.0)
        )
