"""Harvest-side sweep contract: vectorized supply ≡ scalar reference.

Every scavenger model now exposes ``raw_energy_sweep_j``/``energy_sweep_j``,
the supply-side mirror of the compiled power table's batch path.  The scalar
``energy_per_revolution_j`` stays the authoritative reference; these tests
pin the 1e-9 equivalence for every concrete model, the cut-in/standstill
zeroing, the ``size_factor`` semantics and the scalar fallback for
third-party subclasses that only implement the scalar contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scavenger import (
    ElectromagneticScavenger,
    ElectrostaticScavenger,
    EnergyScavenger,
    PiezoelectricScavenger,
    TabulatedScavenger,
)
from repro.scavenger.conditioning import PowerConditioning, conditioned

SPEEDS = np.linspace(0.0, 260.0, 521)  # includes 0, sub-cut-in and saturation

ALL_MODELS = [
    PiezoelectricScavenger(),
    ElectromagneticScavenger(),
    ElectrostaticScavenger(),
    TabulatedScavenger(
        speeds_kmh=(10.0, 40.0, 90.0, 180.0),
        energies_j=(2e-6, 40e-6, 150e-6, 320e-6),
    ),
    TabulatedScavenger(
        speeds_kmh=(10.0, 40.0, 90.0, 180.0),
        energies_j=(2e-6, 40e-6, 150e-6, 320e-6),
        extrapolate=True,
    ),
    conditioned(PiezoelectricScavenger()),
    conditioned(ElectromagneticScavenger().scaled(3.0)),
]


def _ids(models):
    return [f"{type(m).__name__}-{m.describe()}" for m in models]


class TestSweepEquivalence:
    @pytest.mark.parametrize("scavenger", ALL_MODELS, ids=_ids(ALL_MODELS))
    def test_sweep_matches_scalar_reference(self, scavenger):
        sweep = scavenger.energy_sweep_j(SPEEDS)
        scalar = np.array(
            [scavenger.energy_per_revolution_j(float(v)) for v in SPEEDS]
        )
        assert sweep.shape == scalar.shape
        np.testing.assert_allclose(sweep, scalar, rtol=1e-9, atol=0.0)

    @pytest.mark.parametrize("scavenger", ALL_MODELS, ids=_ids(ALL_MODELS))
    def test_raw_sweep_matches_scalar_raw(self, scavenger):
        positive = SPEEDS[SPEEDS > 0.0]
        sweep = scavenger.raw_energy_sweep_j(positive)
        scalar = np.array(
            [scavenger.raw_energy_per_revolution_j(float(v)) for v in positive]
        )
        np.testing.assert_allclose(sweep, scalar, rtol=1e-9, atol=0.0)

    @pytest.mark.parametrize("scavenger", ALL_MODELS, ids=_ids(ALL_MODELS))
    def test_energy_curve_delegates_to_the_sweep(self, scavenger):
        curve = scavenger.energy_curve(SPEEDS)
        assert np.array_equal(curve, scavenger.energy_sweep_j(SPEEDS))


class TestSweepSemantics:
    def test_zero_and_sub_cut_in_speeds_harvest_nothing(self):
        scavenger = PiezoelectricScavenger(minimum_speed_kmh=12.0)
        sweep = scavenger.energy_sweep_j([0.0, 5.0, 11.99, 12.0, 30.0])
        assert sweep[0] == 0.0
        assert sweep[1] == 0.0
        assert sweep[2] == 0.0
        assert sweep[3] > 0.0
        assert sweep[4] > 0.0

    def test_negative_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            PiezoelectricScavenger().energy_sweep_j([10.0, -1.0])
        with pytest.raises(ConfigurationError):
            conditioned(PiezoelectricScavenger()).energy_sweep_j([-5.0])

    def test_size_factor_scales_linearly(self):
        unit = PiezoelectricScavenger()
        tripled = unit.scaled(3.0)
        speeds = np.linspace(10.0, 200.0, 50)
        np.testing.assert_allclose(
            tripled.energy_sweep_j(speeds),
            3.0 * unit.energy_sweep_j(speeds),
            rtol=1e-12,
        )

    def test_empty_sweep(self):
        assert PiezoelectricScavenger().energy_sweep_j([]).shape == (0,)

    def test_conditioned_cut_in_comes_from_the_source(self):
        source = ElectromagneticScavenger()  # 10 km/h cut-in
        wrapped = conditioned(source)
        sweep = wrapped.energy_sweep_j([5.0, 9.9, 10.0])
        assert sweep[0] == 0.0
        assert sweep[1] == 0.0
        assert sweep[2] > 0.0

    def test_conditioning_bank_sweep_matches_scalar(self):
        chain = PowerConditioning()
        harvested = np.concatenate(([0.0], np.geomspace(1e-8, 1e-3, 60)))
        sweep = chain.banked_energy_sweep_j(harvested)
        scalar = np.array([chain.banked_energy_j(float(h)) for h in harvested])
        np.testing.assert_allclose(sweep, scalar, rtol=1e-12, atol=0.0)
        assert sweep[0] == 0.0

    def test_conditioning_bank_sweep_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            PowerConditioning().banked_energy_sweep_j([1e-6, -1e-9])


@dataclass(frozen=True)
class _ScalarOnlyScavenger(EnergyScavenger):
    """A subclass implementing only the scalar contract (no numpy override)."""

    @property
    def technology(self) -> str:
        return "scalar-only"

    def raw_energy_per_revolution_j(self, speed_kmh: float) -> float:
        return 1e-6 * speed_kmh


class TestScalarFallback:
    def test_base_class_sweep_falls_back_to_scalar_calls(self):
        scavenger = _ScalarOnlyScavenger(size_factor=2.0)
        speeds = np.array([0.0, 3.0, 10.0, 120.0])
        sweep = scavenger.energy_sweep_j(speeds)
        scalar = np.array(
            [scavenger.energy_per_revolution_j(float(v)) for v in speeds]
        )
        assert np.array_equal(sweep, scalar)

    def test_fallback_preserves_cut_in(self):
        scavenger = _ScalarOnlyScavenger(minimum_speed_kmh=50.0)
        sweep = scavenger.energy_sweep_j([10.0, 49.0, 51.0])
        assert sweep[0] == 0.0 and sweep[1] == 0.0 and sweep[2] > 0.0
