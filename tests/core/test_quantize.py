"""Tests for the single-sourced quantization module and the emulator bin APIs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conditions.operating_point import TEMPERATURE_RANGE_C
from repro.core import emulator as emulator_module
from repro.core import quantize
from repro.core.emulator import NodeEmulator
from repro.vehicle.drive_cycle import urban_cycle


class TestQuantize:
    def test_emulator_rides_the_shared_constants(self):
        # The compatibility aliases must BE the shared constants: a drifted
        # copy would silently desynchronize fleet bin sharing from the cache.
        assert emulator_module._SPEED_QUANTUM_KMH is quantize.SPEED_QUANTUM_KMH
        assert (
            emulator_module._TEMPERATURE_QUANTUM_C is quantize.TEMPERATURE_QUANTUM_C
        )

    def test_bin_round_trips(self):
        for speed in (0.2, 0.25, 17.3, 249.99):
            bin_index = quantize.speed_bin(speed)
            center = quantize.speed_bin_center_kmh(bin_index)
            assert abs(center - speed) <= quantize.SPEED_QUANTUM_KMH / 2 + 1e-12
            assert quantize.speed_bin(center) == bin_index
        for temperature in (-39.7, 0.0, 24.5, 124.9):
            bin_index = quantize.temperature_bin(temperature)
            center = quantize.temperature_bin_center_c(bin_index)
            assert abs(center - temperature) <= quantize.TEMPERATURE_QUANTUM_C / 2 + 1e-12

    def test_ambient_quantum_is_a_temperature_quantum_multiple(self):
        # The fleet fast path relies on ambient bin centers BEING temperature
        # bin centers (a cohort's standstill sweep reuses the temperature
        # memo); a non-integer ratio would break that identity.
        ratio = quantize.AMBIENT_QUANTUM_C / quantize.TEMPERATURE_QUANTUM_C
        assert ratio == int(ratio)
        assert ratio >= 1

    @given(temperature=st.floats(min_value=-40.0, max_value=125.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_ambient_bin_round_trip_property(self, temperature):
        bin_index = quantize.ambient_bin(temperature)
        center = quantize.ambient_bin_center_c(bin_index)
        # Center stays within half a quantum of the sample...
        assert abs(center - temperature) <= quantize.AMBIENT_QUANTUM_C / 2 + 1e-12
        # ...and re-binning the center is a fixed point (snapping is
        # idempotent — materializing a cohort at the center loses nothing).
        assert quantize.ambient_bin(center) == bin_index
        assert quantize.ambient_bin_center_c(quantize.ambient_bin(center)) == center

    @given(temperature=st.floats(min_value=-40.0, max_value=125.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_ambient_center_is_a_temperature_center(self, temperature):
        # Every ambient bin center must itself be an exact temperature bin
        # center, so the cohort standstill memo indexed by temperature_bin
        # answers for snapped ambients too.
        center = quantize.ambient_bin_center_c(quantize.ambient_bin(temperature))
        temp_bin = quantize.temperature_bin(center)
        assert quantize.temperature_bin_center_c(temp_bin) == center

    @given(
        temperature=st.floats(
            min_value=TEMPERATURE_RANGE_C[0],
            max_value=TEMPERATURE_RANGE_C[1],
            allow_nan=False,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_clipped_ambient_center_stays_in_model_range(self, temperature):
        # Snapping a clipped ambient must never leave the model range —
        # otherwise the thermal cohort would spuriously fall back.
        low, high = TEMPERATURE_RANGE_C
        center = quantize.ambient_bin_center_c(quantize.ambient_bin(temperature))
        assert low <= center <= high

    def test_upper_edge_rounds_into_the_bin_below(self):
        # Every speed strictly below the upper edge rounds into the bin, so
        # one feasibility probe at the edge covers the whole bin.
        bin_index = quantize.speed_bin(60.0)
        edge = quantize.speed_bin_upper_edge_kmh(bin_index)
        assert quantize.speed_bin(edge - 1e-9) == bin_index


class TestEmulatorBinSharing:
    @pytest.fixture
    def emulators(self, node, database, scavenger, storage):
        from repro.scavenger.storage import supercapacitor

        first = NodeEmulator(node, database, scavenger, storage)
        second = NodeEmulator(node, database, scavenger, supercapacitor())
        return first, second

    def test_seeded_entries_match_per_miss_evaluation(self, emulators):
        """evaluate_energy_bins + seed_energy_cache == what a cold run caches."""
        donor, receiver = emulators
        cycle = urban_cycle(repetitions=1)
        pending = donor._pending_energy_bins(cycle, idle_step_s=1.0)
        assert pending
        entries = donor.evaluate_energy_bins(pending)
        accepted = receiver.seed_energy_cache(entries)
        assert accepted == len(entries)

        cold = NodeEmulator(
            donor.node,
            donor.evaluator.source_database,
            donor.scavenger,
            donor.storage,
            evaluator=donor.evaluator,
        )
        cold_result = cold.emulate(cycle)
        warm_result = receiver.emulate(cycle)
        # Different storage elements, same node/database: the cached demand
        # side is shared, the per-vehicle supply/storage integration is not —
        # but every cached entry the cold run produced must equal the seeded
        # one bit for bit.
        for key, value in entries.items():
            assert cold._energy_cache[key] == value
        assert warm_result.revolutions == cold_result.revolutions

    def test_evaluate_empty_pending(self, emulators):
        donor, _receiver = emulators
        assert donor.evaluate_energy_bins({}) == {}
