"""Tests for power traces (Fig. 3 substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trace import PowerTrace
from repro.errors import AnalysisError


def burst_trace() -> PowerTrace:
    """A synthetic two-revolution burst pattern."""
    trace = PowerTrace()
    for revolution in range(2):
        offset = revolution * 0.1
        trace.append(offset + 0.000, 0.010, 1.5e-3, "acquire")
        trace.append(offset + 0.010, 0.005, 2.8e-3, "compute")
        trace.append(offset + 0.015, 0.004, 8.0e-3, "transmit")
        trace.append(offset + 0.019, 0.081, 15e-6, "sleep")
    return trace


class TestConstruction:
    def test_segment_count(self):
        assert len(burst_trace()) == 8

    def test_duration(self):
        assert burst_trace().duration_s == pytest.approx(0.2)

    def test_zero_duration_segment_is_skipped(self):
        trace = PowerTrace()
        trace.append(0.0, 0.0, 1.0)
        assert trace.is_empty

    def test_overlapping_segment_rejected(self):
        trace = PowerTrace()
        trace.append(0.0, 0.1, 1.0)
        with pytest.raises(AnalysisError):
            trace.append(0.05, 0.1, 1.0)

    def test_gap_between_segments_allowed(self):
        trace = PowerTrace()
        trace.append(0.0, 0.1, 1.0)
        trace.append(0.5, 0.1, 1.0)
        assert trace.duration_s == pytest.approx(0.6)

    def test_negative_values_rejected(self):
        trace = PowerTrace()
        with pytest.raises(AnalysisError):
            trace.append(0.0, -0.1, 1.0)
        with pytest.raises(AnalysisError):
            trace.append(0.0, 0.1, -1.0)

    def test_extend(self):
        first = burst_trace()
        second = PowerTrace()
        second.append(0.3, 0.1, 1e-3, "extra")
        first.extend(second)
        assert len(first) == 9


class TestStatistics:
    def test_energy(self):
        trace = burst_trace()
        expected = 2 * (0.010 * 1.5e-3 + 0.005 * 2.8e-3 + 0.004 * 8.0e-3 + 0.081 * 15e-6)
        assert trace.energy_j() == pytest.approx(expected)

    def test_average_power(self):
        trace = burst_trace()
        assert trace.average_power_w() == pytest.approx(trace.energy_j() / 0.2)

    def test_peak_and_floor(self):
        trace = burst_trace()
        assert trace.peak_power_w() == pytest.approx(8.0e-3)
        assert trace.min_power_w() == pytest.approx(15e-6)

    def test_peak_to_average_is_large_for_bursty_load(self):
        assert burst_trace().peak_to_average_ratio() > 5.0

    def test_time_above_threshold(self):
        trace = burst_trace()
        assert trace.time_above(5e-3) == pytest.approx(0.008)
        assert trace.time_above(0.0) == pytest.approx(0.2)

    def test_time_above_rejects_negative_threshold(self):
        with pytest.raises(AnalysisError):
            burst_trace().time_above(-1.0)

    def test_label_energy_grouping(self):
        grouped = burst_trace().label_energy_j()
        assert set(grouped) == {"acquire", "compute", "transmit", "sleep"}
        assert grouped["transmit"] == pytest.approx(2 * 0.004 * 8.0e-3)

    def test_empty_trace_statistics(self):
        trace = PowerTrace()
        assert trace.energy_j() == 0.0
        assert trace.average_power_w() == 0.0
        assert trace.peak_power_w() == 0.0
        assert trace.peak_to_average_ratio() == 0.0


class TestSamplingAndWindows:
    def test_sampling_grid_covers_trace(self):
        times, powers = burst_trace().sample(1e-3)
        assert times[0] == pytest.approx(0.0)
        assert times[-1] < 0.2
        assert len(times) == len(powers)

    def test_sampled_peak_matches(self):
        _, powers = burst_trace().sample(0.5e-3)
        assert np.max(powers) == pytest.approx(8.0e-3)

    def test_sampled_energy_approximates_exact_energy(self):
        trace = burst_trace()
        times, powers = trace.sample(1e-4)
        sampled_energy = float(np.sum(powers) * 1e-4)
        assert sampled_energy == pytest.approx(trace.energy_j(), rel=0.02)

    def test_sample_rejects_bad_step(self):
        with pytest.raises(AnalysisError):
            burst_trace().sample(0.0)

    def test_windowing_clips_segments(self):
        window = burst_trace().windowed(0.012, 0.018)
        assert window.duration_s == pytest.approx(0.006)
        assert window.peak_power_w() == pytest.approx(8.0e-3)

    def test_window_rejects_empty_interval(self):
        with pytest.raises(AnalysisError):
            burst_trace().windowed(0.1, 0.1)

    def test_as_rows_units(self):
        rows = burst_trace().as_rows()
        assert rows[2]["power_uw"] == pytest.approx(8000.0)
        assert rows[2]["label"] == "transmit"
