"""Tests for the emulator's batch prefill of the revolution-energy cache.

The contract is strict: ``emulate(prefill=True)`` must produce *byte
identical* output to ``emulate(prefill=False)`` — same totals, same
``SampleLog`` bytes, same trace — because prefilled cache entries are pure
functions of the same quantized keys the per-miss path uses, evaluated
through the same batch kernel.
"""

from __future__ import annotations

import pytest

from repro.conditions.temperature import TyreThermalModel
from repro.core.emulator import NodeEmulator
from repro.scavenger.storage import supercapacitor
from repro.vehicle.drive_cycle import DriveCycle, DriveCyclePhase, urban_cycle


def _thermal_emulator(node, database, scavenger) -> NodeEmulator:
    return NodeEmulator(
        node,
        database,
        scavenger,
        supercapacitor(initial_fraction=0.3),
        thermal_model=TyreThermalModel(time_constant_s=120.0),
    )


def _hour_cycle() -> DriveCycle:
    """An hour-long profile mixing cruises, ramps and a stop."""
    phases = [
        DriveCyclePhase(duration_s=600.0, start_kmh=30.0, end_kmh=120.0),
        DriveCyclePhase(duration_s=900.0, start_kmh=120.0, end_kmh=120.0),
        DriveCyclePhase(duration_s=300.0, start_kmh=120.0, end_kmh=0.0),
        DriveCyclePhase(duration_s=300.0, start_kmh=0.0, end_kmh=0.0),
        DriveCyclePhase(duration_s=600.0, start_kmh=0.0, end_kmh=90.0),
        DriveCyclePhase(duration_s=900.0, start_kmh=90.0, end_kmh=45.0),
    ]
    return DriveCycle(phases=phases, name="hour")


class TestPrefillByteIdentity:
    def test_hour_long_cycle_samplelog_is_byte_identical(
        self, node, database, scavenger
    ):
        cycle = _hour_cycle()
        with_prefill = _thermal_emulator(node, database, scavenger).emulate(
            cycle, prefill=True
        )
        without = _thermal_emulator(node, database, scavenger).emulate(
            cycle, prefill=False
        )
        ours, theirs = with_prefill.sample_arrays(), without.sample_arrays()
        for key in ours:
            assert ours[key].tobytes() == theirs[key].tobytes(), key
        assert with_prefill == without

    def test_trace_window_is_identical(self, node, database, scavenger):
        cycle = urban_cycle(repetitions=1)
        window = (10.0, 12.0)
        with_prefill = _thermal_emulator(node, database, scavenger).emulate(
            cycle, trace_window=window, prefill=True
        )
        without = _thermal_emulator(node, database, scavenger).emulate(
            cycle, trace_window=window, prefill=False
        )
        assert with_prefill.trace == without.trace

    def test_constant_temperature_run_is_identical(self, node, database, scavenger):
        cycle = urban_cycle(repetitions=2)
        with_prefill = NodeEmulator(
            node, database, scavenger, supercapacitor()
        ).emulate(cycle, prefill=True)
        without = NodeEmulator(
            node, database, scavenger, supercapacitor()
        ).emulate(cycle, prefill=False)
        assert with_prefill == without


class TestPrefillMechanics:
    def test_prefill_fills_the_cache_before_the_loop(self, node, database, scavenger):
        emulator = _thermal_emulator(node, database, scavenger)
        filled = emulator._prefill_energy_cache(_hour_cycle(), idle_step_s=1.0)
        assert filled > 0
        assert len(emulator._energy_cache) == filled

    def test_second_prefill_is_a_no_op(self, node, database, scavenger):
        emulator = _thermal_emulator(node, database, scavenger)
        cycle = _hour_cycle()
        first = emulator._prefill_energy_cache(cycle, idle_step_s=1.0)
        assert first > 0
        assert emulator._prefill_energy_cache(cycle, idle_step_s=1.0) == 0

    def test_warm_cycle_skips_the_rescan(self, node, database, scavenger, monkeypatch):
        """A completed scan is memoized: warm emulate() runs do not re-walk."""
        emulator = _thermal_emulator(node, database, scavenger)
        cycle = _hour_cycle()
        emulator.emulate(cycle)
        scans = []
        original = NodeEmulator._pending_energy_bins

        def counting(self, *args, **kwargs):
            scans.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(NodeEmulator, "_pending_energy_bins", counting)
        warm = emulator.emulate(cycle)
        assert scans == [], "warm run re-scanned the cycle"
        fresh = _thermal_emulator(node, database, scavenger).emulate(cycle)
        assert warm == fresh

    def test_base_point_change_invalidates_the_scan_memo(
        self, node, database, scavenger
    ):
        from repro.conditions.operating_point import OperatingPoint

        emulator = _thermal_emulator(node, database, scavenger)
        cycle = _hour_cycle()
        emulator.emulate(cycle)
        assert emulator._prefilled_cycles
        emulator.base_point = OperatingPoint(temperature_c=40.0)
        emulator.emulate(cycle)  # _ensure_caches_fresh clears the memo
        assert emulator._prefilled_cycles  # re-scanned and re-memoized

    def test_prefill_resets_the_thermal_model(self, node, database, scavenger):
        emulator = _thermal_emulator(node, database, scavenger)
        ambient = emulator.thermal_model.current_celsius
        emulator._prefill_energy_cache(_hour_cycle(), idle_step_s=1.0)
        assert emulator.thermal_model.current_celsius == ambient

    def test_prefill_skips_infeasible_bins(self, node, database, scavenger, monkeypatch):
        """Rounds whose schedule cannot be built are left to the main loop."""
        from repro.blocks.node import SensorNode
        from repro.errors import ScheduleError

        original = SensorNode.schedule_for

        def limited(self, speed_kmh, revolution_index=0):
            if speed_kmh >= 100.0:
                raise ScheduleError("limited test node")
            return original(self, speed_kmh, revolution_index)

        monkeypatch.setattr(SensorNode, "schedule_for", limited)
        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        cycle = DriveCycle(
            phases=[DriveCyclePhase(duration_s=60.0, start_kmh=80.0, end_kmh=130.0)],
            name="ramp-past-limit",
        )
        emulator._prefill_energy_cache(cycle, idle_step_s=1.0)
        assert all(
            not (isinstance(key[0], int) and key[0] >= 200)
            for key in emulator._energy_cache
        ), "a bin past the feasibility limit was prefilled"
        # The integration loop then raises at the first unsustainable round,
        # exactly as without prefill.
        with pytest.raises(ScheduleError):
            emulator.emulate(cycle, prefill=True)

    def test_prefill_entries_match_miss_entries(self, node, database, scavenger):
        """Prefilled values must be bitwise what the miss path computes."""
        cycle = _hour_cycle()
        prefilled = _thermal_emulator(node, database, scavenger)
        prefilled._prefill_energy_cache(cycle, idle_step_s=1.0)
        scalar = _thermal_emulator(node, database, scavenger)
        scalar.emulate(cycle, prefill=False)
        shared = set(prefilled._energy_cache) & set(scalar._energy_cache)
        assert shared, "no common cache keys between prefill and miss paths"
        for key in shared:
            assert prefilled._energy_cache[key] == scalar._energy_cache[key], key


class TestArrayCoreByteIdentity:
    """The array-based integration core: kernel path ≡ stepwise reference.

    ``emulate()`` integrates through the pure ``storage.trajectory`` kernel
    whenever every per-round quantity is known up front, and falls back to
    the stepwise loop (same storage step primitives) otherwise.  Both paths
    must produce byte-identical ``SampleLog`` output — the same contract the
    prefill flag has always carried, extended to the integration core.
    """

    def test_kernel_path_is_actually_taken(self, node, database, scavenger, monkeypatch):
        import repro.core.emulator as emulator_module

        calls = []
        original = emulator_module.trajectory

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(emulator_module, "trajectory", counting)
        _thermal_emulator(node, database, scavenger).emulate(_hour_cycle())
        assert calls, "a fully prefilled cycle should integrate through the kernel"

    def test_forced_stepwise_loop_is_byte_identical(
        self, node, database, scavenger, monkeypatch
    ):
        """Marking every round unresolved forces the stepwise reference loop."""
        cycle = _hour_cycle()
        kernel = _thermal_emulator(node, database, scavenger).emulate(cycle)

        original = NodeEmulator._resolve_round_energies

        def unresolved(self, units, is_round, temps):
            energies, phase_lists, resolved = original(self, units, is_round, temps)
            resolved[:] = False
            return energies, [None] * len(phase_lists), resolved

        monkeypatch.setattr(NodeEmulator, "_resolve_round_energies", unresolved)
        stepwise = _thermal_emulator(node, database, scavenger).emulate(cycle)
        ours, theirs = kernel.sample_arrays(), stepwise.sample_arrays()
        for key in ours:
            assert ours[key].tobytes() == theirs[key].tobytes(), key
        assert kernel == stepwise

    def test_stepwise_trace_matches_kernel_trace(
        self, node, database, scavenger, monkeypatch
    ):
        cycle = urban_cycle(repetitions=1)
        window = (20.0, 24.0)
        kernel = _thermal_emulator(node, database, scavenger).emulate(
            cycle, trace_window=window
        )
        original = NodeEmulator._resolve_round_energies

        def unresolved(self, units, is_round, temps):
            energies, phase_lists, resolved = original(self, units, is_round, temps)
            resolved[:] = False
            return energies, [None] * len(phase_lists), resolved

        monkeypatch.setattr(NodeEmulator, "_resolve_round_energies", unresolved)
        stepwise = _thermal_emulator(node, database, scavenger).emulate(
            cycle, trace_window=window
        )
        assert kernel.trace == stepwise.trace

    def test_storage_holds_the_final_charge(
        self, node, database, scavenger, monkeypatch
    ):
        """Both integration paths leave the element at the same final charge."""
        cycle = _hour_cycle()
        kernel_emulator = _thermal_emulator(node, database, scavenger)
        kernel_emulator.emulate(cycle)
        kernel_charge = kernel_emulator.storage.charge_j
        assert 0.0 <= kernel_charge <= kernel_emulator.storage.capacity_j

        original = NodeEmulator._resolve_round_energies

        def unresolved(self, units, is_round, temps):
            energies, phase_lists, resolved = original(self, units, is_round, temps)
            resolved[:] = False
            return energies, [None] * len(phase_lists), resolved

        monkeypatch.setattr(NodeEmulator, "_resolve_round_energies", unresolved)
        stepwise_emulator = _thermal_emulator(node, database, scavenger)
        stepwise_emulator.emulate(cycle)
        assert stepwise_emulator.storage.charge_j == kernel_charge

    def test_harvest_rides_the_vectorized_sweep(
        self, node, database, scavenger, monkeypatch
    ):
        """emulate() calls energy_sweep_j once instead of N scalar calls."""
        from repro.scavenger.piezoelectric import PiezoelectricScavenger

        sweeps = []
        scalars = []
        original_sweep = PiezoelectricScavenger.energy_sweep_j
        original_scalar = PiezoelectricScavenger.energy_per_revolution_j

        def counting_sweep(self, speeds):
            sweeps.append(len(speeds))
            return original_sweep(self, speeds)

        def counting_scalar(self, speed):
            scalars.append(speed)
            return original_scalar(self, speed)

        monkeypatch.setattr(PiezoelectricScavenger, "energy_sweep_j", counting_sweep)
        monkeypatch.setattr(
            PiezoelectricScavenger, "energy_per_revolution_j", counting_scalar
        )
        result = NodeEmulator(
            node, database, PiezoelectricScavenger(), supercapacitor()
        ).emulate(urban_cycle(repetitions=1))
        assert sweeps == [result.revolutions]
        assert scalars == []


class TestEnergyCacheCap:
    def test_cache_cap_eviction_clears_and_refills(
        self, node, database, scavenger, monkeypatch
    ):
        """Hitting the entry cap drops the cache, and emulation still works."""
        import repro.core.emulator as emulator_module

        monkeypatch.setattr(emulator_module, "_MAX_ENERGY_CACHE_ENTRIES", 8)
        emulator = _thermal_emulator(node, database, scavenger)
        result = emulator.emulate(_hour_cycle(), prefill=False)
        assert result.revolutions > 0
        assert len(emulator._energy_cache) <= 8
        fresh = _thermal_emulator(node, database, scavenger).emulate(
            _hour_cycle(), prefill=False
        )
        assert result == fresh

    def test_cap_applies_to_prefill_inserts(
        self, node, database, scavenger, monkeypatch
    ):
        import repro.core.emulator as emulator_module

        monkeypatch.setattr(emulator_module, "_MAX_ENERGY_CACHE_ENTRIES", 8)
        emulator = _thermal_emulator(node, database, scavenger)
        emulator._prefill_energy_cache(_hour_cycle(), idle_step_s=1.0)
        assert len(emulator._energy_cache) <= 8

    def test_capped_run_matches_uncapped_run(
        self, node, database, scavenger, monkeypatch
    ):
        """Eviction is a perf knob only: results must not change."""
        import repro.core.emulator as emulator_module

        cycle = _hour_cycle()
        uncapped = _thermal_emulator(node, database, scavenger).emulate(cycle)
        monkeypatch.setattr(emulator_module, "_MAX_ENERGY_CACHE_ENTRIES", 4)
        capped = _thermal_emulator(node, database, scavenger).emulate(cycle)
        assert capped == uncapped
