"""Tests for the energy-balance analysis (Fig. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.core.balance import BalancePoint, EnergyBalanceAnalysis, EnergyBalanceCurve
from repro.errors import AnalysisError
from repro.scavenger.electrostatic import ElectrostaticScavenger


@pytest.fixture
def analysis(node, database, scavenger):
    return EnergyBalanceAnalysis(node, database, scavenger)


SPEEDS = list(range(5, 205, 5))


class TestBalancePoint:
    def test_margin_and_surplus(self):
        point = BalancePoint(speed_kmh=60.0, required_j=50e-6, generated_j=80e-6)
        assert point.margin_j == pytest.approx(30e-6)
        assert point.is_surplus

    def test_deficit(self):
        point = BalancePoint(speed_kmh=20.0, required_j=80e-6, generated_j=10e-6)
        assert not point.is_surplus
        assert point.coverage == pytest.approx(0.125)

    def test_coverage_with_zero_requirement(self):
        point = BalancePoint(speed_kmh=60.0, required_j=0.0, generated_j=1e-6)
        assert point.coverage == float("inf")


class TestCurveShape:
    """The qualitative Fig. 2 shape the reproduction must preserve."""

    @pytest.fixture
    def curve(self, analysis):
        return analysis.curve(SPEEDS)

    def test_required_energy_decreases_with_speed(self, curve):
        required = curve.required_j
        assert required[0] > required[-1]
        # Largely monotone: allow tiny numerical wiggles.
        assert np.sum(np.diff(required) > 1e-9) <= 2

    def test_generated_energy_increases_with_speed(self, curve):
        generated = curve.generated_j
        assert np.all(np.diff(generated) >= -1e-12)
        assert generated[-1] > generated[0]

    def test_deficit_at_low_speed(self, curve):
        assert not curve.points[0].is_surplus

    def test_surplus_at_high_speed(self, curve):
        assert curve.points[-1].is_surplus

    def test_single_crossover(self, curve):
        margins = curve.margins_j
        sign_changes = np.sum(np.diff(np.sign(margins)) != 0)
        assert sign_changes == 1

    def test_break_even_in_expected_band(self, curve):
        break_even = curve.break_even_speed_kmh()
        assert break_even is not None
        assert 20.0 <= break_even <= 90.0

    def test_deficit_region_is_below_break_even(self, curve):
        low, high = curve.deficit_region_kmh()
        assert low == pytest.approx(5.0)
        assert high < curve.break_even_speed_kmh() + 5.0

    def test_point_at_interpolates(self, curve):
        interpolated = curve.point_at(62.5)
        assert curve.point_at(60.0).generated_j <= interpolated.generated_j <= curve.point_at(
            65.0
        ).generated_j

    def test_point_at_outside_range_raises(self, curve):
        with pytest.raises(AnalysisError):
            curve.point_at(500.0)

    def test_as_rows_one_per_speed(self, curve):
        rows = curve.as_rows()
        assert len(rows) == len(SPEEDS)
        assert rows[0]["speed_kmh"] == 5.0


class TestCurveValidation:
    def test_needs_at_least_two_points(self, node):
        with pytest.raises(AnalysisError):
            EnergyBalanceCurve(node_name="x", scavenger_label="y", points=(
                BalancePoint(60.0, 1e-6, 1e-6),
            ))

    def test_speeds_must_increase(self):
        with pytest.raises(AnalysisError):
            EnergyBalanceCurve(
                node_name="x",
                scavenger_label="y",
                points=(
                    BalancePoint(60.0, 1e-6, 1e-6),
                    BalancePoint(50.0, 1e-6, 1e-6),
                ),
            )

    def test_curve_rejects_non_positive_speed(self, analysis):
        with pytest.raises(AnalysisError):
            analysis.curve([0.0, 10.0])

    def test_curve_accepts_a_generator_of_speeds(self, analysis):
        """Speeds stream through one pass — no double materialization."""
        import numpy as np

        streamed = analysis.curve(float(v) for v in (20.0, 60.0, 120.0))
        listed = analysis.curve([20.0, 60.0, 120.0])
        assert np.array_equal(streamed.required_j, listed.required_j)
        assert np.array_equal(streamed.generated_j, listed.generated_j)

    def test_batch_curve_generated_matches_the_harvest_sweep(self, analysis):
        """The batch curve's supply side is the scavenger sweep, verbatim."""
        import numpy as np

        speeds = np.linspace(10.0, 150.0, 15)
        curve = analysis.curve(speeds)
        assert np.array_equal(
            curve.generated_j, analysis.generated_energy_sweep(speeds)
        )
        scalar = np.array([analysis.generated_energy_j(float(v)) for v in speeds])
        np.testing.assert_allclose(curve.generated_j, scalar, rtol=1e-9, atol=0.0)


class TestBreakEven:
    def test_bisection_matches_curve_estimate(self, analysis):
        curve_estimate = analysis.curve(SPEEDS).break_even_speed_kmh()
        bisected = analysis.break_even_speed_kmh()
        assert bisected == pytest.approx(curve_estimate, abs=3.0)

    def test_never_positive_returns_none(self, node, database):
        weak = ElectrostaticScavenger()
        analysis = EnergyBalanceAnalysis(node, database, weak)
        assert analysis.break_even_speed_kmh(high_kmh=200.0) is None

    def test_always_positive_returns_lower_bound(self, legacy, database, scavenger):
        analysis = EnergyBalanceAnalysis(legacy, database, scavenger)
        assert analysis.break_even_speed_kmh(low_kmh=20.0) == pytest.approx(20.0)

    def test_invalid_bounds_rejected(self, analysis):
        with pytest.raises(AnalysisError):
            analysis.break_even_speed_kmh(low_kmh=100.0, high_kmh=50.0)

    def test_alias_matches(self, analysis):
        assert analysis.minimum_activation_speed_kmh() == pytest.approx(
            analysis.break_even_speed_kmh(), abs=0.2
        )

    def test_bigger_scavenger_lowers_break_even(self, node, database, scavenger):
        small = EnergyBalanceAnalysis(node, database, scavenger).break_even_speed_kmh()
        large = EnergyBalanceAnalysis(
            node, database, scavenger.scaled(2.0)
        ).break_even_speed_kmh()
        assert large < small

    def test_hot_condition_raises_break_even(self, node, database, scavenger):
        analysis = EnergyBalanceAnalysis(node, database, scavenger)
        nominal = analysis.break_even_speed_kmh()
        hot = analysis.break_even_speed_kmh(
            point_factory=lambda speed: OperatingPoint(speed_kmh=speed, temperature_c=125.0)
        )
        assert hot > nominal


class TestConversionLosses:
    def test_requirement_is_higher_with_losses(self, node, database, scavenger, point):
        with_losses = EnergyBalanceAnalysis(
            node, database, scavenger, include_conversion_losses=True
        ).required_energy_j(point)
        without_losses = EnergyBalanceAnalysis(
            node, database, scavenger, include_conversion_losses=False
        ).required_energy_j(point)
        assert with_losses > without_losses
        assert with_losses == pytest.approx(
            without_losses / node.pmu.regulator_efficiency
        )
