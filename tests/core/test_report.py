"""Tests for the plain-text flow report builder."""

from __future__ import annotations

import pytest

from repro.core.flow import EnergyAnalysisFlow, FlowReport
from repro.core.report import render_flow_report
from repro.errors import AnalysisError
from repro.vehicle.drive_cycle import urban_cycle


@pytest.fixture(scope="module")
def full_report(request):
    from repro.blocks import baseline_node
    from repro.power import reference_power_database
    from repro.scavenger import PiezoelectricScavenger, supercapacitor

    flow = EnergyAnalysisFlow(
        baseline_node(),
        reference_power_database(),
        PiezoelectricScavenger(),
        storage=supercapacitor(),
    )
    return flow.run(
        speeds_kmh=list(range(10, 210, 20)), drive_cycle=urban_cycle(repetitions=1)
    )


class TestRenderFlowReport:
    def test_contains_every_flow_step_section(self, full_report):
        text = render_flow_report(full_report)
        assert "Step 1" in text
        assert "Step 2" in text
        assert "Steps 3-4" in text
        assert "Step 5" in text
        assert "Step 6" in text

    def test_mentions_the_architecture_and_condition(self, full_report):
        text = render_flow_report(full_report)
        assert "baseline" in text
        assert "60 km/h" in text

    def test_reports_break_even_speeds(self, full_report):
        text = render_flow_report(full_report)
        assert "break-even speed (as characterized)" in text
        assert "break-even speed (after optimization)" in text

    def test_reports_energy_saving(self, full_report):
        text = render_flow_report(full_report)
        assert "% saving" in text

    def test_lists_block_names(self, full_report):
        text = render_flow_report(full_report)
        for block in ("mcu", "rf_tx", "accelerometer"):
            assert block in text

    def test_power_table_row_cap(self, full_report):
        text = render_flow_report(full_report, max_power_rows=3)
        assert "further rows omitted" in text

    def test_report_without_emulation_step(self, node, database, scavenger):
        flow = EnergyAnalysisFlow(node, database, scavenger)
        report = flow.run(speeds_kmh=[20.0, 60.0, 120.0])
        text = render_flow_report(report)
        assert "Step 5" in text
        assert "Step 6" not in text

    def test_report_without_optimization_step(self, node, database, scavenger):
        flow = EnergyAnalysisFlow(node, database, scavenger)
        report = flow.run(speeds_kmh=[20.0, 60.0, 120.0], optimize=False)
        text = render_flow_report(report)
        assert "Steps 3-4" not in text
        assert "Step 5" in text

    def test_empty_report_rejected(self, point):
        empty = FlowReport(node_name="x", point=point)
        with pytest.raises(AnalysisError):
            render_flow_report(empty)

    def test_report_ends_with_footer(self, full_report):
        assert render_flow_report(full_report).rstrip().endswith("end of report")
