"""Tests for the workload-vectorized sweep: ``schedule_energy_sweep``,
per-point activity factors, and the cross-instance census-timing cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.conditions.batch import BatchConditions
from repro.conditions.operating_point import OperatingPoint
from repro.core.evaluator import EnergyEvaluator, clear_census_timing_cache
from repro.errors import AnalysisError, ConfigurationError, ScheduleError

RTOL = 1e-9

#: Every conditional-phase combination a revolution can realize (NVM writes
#: imply a transmit-free round is impossible for tx_interval=1 nodes, but the
#: sweep accepts any combination — the energy model is defined for all).
ALL_PATTERNS = [
    (False, False, False),
    (True, False, False),
    (False, True, False),
    (True, True, False),
    (True, False, True),
    (True, True, True),
]


@pytest.fixture
def evaluator(node, database) -> EnergyEvaluator:
    return EnergyEvaluator(node, database)


def _mixed_batch(count: int = 24, seed: int = 5) -> tuple[BatchConditions, np.ndarray]:
    """Random speeds/temperatures/activities plus cycling phase patterns."""
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(20.0, 160.0, count)
    temperatures = rng.uniform(-40.0, 125.0, count)
    activities = rng.uniform(0.4, 1.3, count)
    patterns = np.array([ALL_PATTERNS[i % len(ALL_PATTERNS)] for i in range(count)])
    batch = BatchConditions.from_arrays(
        speeds, temperatures, activity=activities
    )
    return batch, patterns


def _scalar_reference(node, evaluator, batch, patterns) -> np.ndarray:
    """One ``schedule_report`` per point — the semantics-defining path."""
    energies = np.empty(len(batch))
    for i in range(len(batch)):
        speed = float(batch.speed_kmh[i])
        point = OperatingPoint(
            speed_kmh=speed, temperature_c=float(batch.temperature_c[i])
        )
        schedule = node.schedule_for_pattern(
            speed,
            transmits=bool(patterns[i, 0]),
            refreshes_slow=bool(patterns[i, 1]),
            writes_nvm=bool(patterns[i, 2]),
        )
        energies[i] = evaluator.schedule_report(
            schedule, point, activity_scale=float(batch.activity[i])
        ).total_energy_j
    return energies


class TestScheduleEnergySweep:
    def test_matches_scalar_reference(self, node, evaluator):
        batch, patterns = _mixed_batch()
        energies = evaluator.schedule_energy_sweep(batch, patterns)
        reference = _scalar_reference(node, evaluator, batch, patterns)
        assert np.allclose(energies, reference, rtol=RTOL, atol=0.0)

    def test_matches_scalar_reference_on_legacy_node(self, legacy, database):
        evaluator = EnergyEvaluator(legacy, database)
        batch, patterns = _mixed_batch(count=12, seed=9)
        energies = evaluator.schedule_energy_sweep(batch, patterns)
        reference = _scalar_reference(legacy, evaluator, batch, patterns)
        assert np.allclose(energies, reference, rtol=RTOL, atol=0.0)

    def test_unit_activity_matches_plain_schedule_report(self, node, evaluator):
        """activity == 1.0 must reproduce the activity-free energies exactly."""
        batch, patterns = _mixed_batch(count=10, seed=3)
        plain = BatchConditions.from_arrays(batch.speed_kmh, batch.temperature_c)
        energies = evaluator.schedule_energy_sweep(plain, patterns)
        for i in range(len(plain)):
            speed = float(plain.speed_kmh[i])
            point = OperatingPoint(
                speed_kmh=speed, temperature_c=float(plain.temperature_c[i])
            )
            schedule = node.schedule_for_pattern(
                speed,
                transmits=bool(patterns[i, 0]),
                refreshes_slow=bool(patterns[i, 1]),
                writes_nvm=bool(patterns[i, 2]),
            )
            report = evaluator.schedule_report(schedule, point)
            assert energies[i] == pytest.approx(report.total_energy_j, rel=RTOL)

    def test_include_phases_matches_schedule_energy_compiled(self, node, evaluator):
        """Per-point phase lists must be bitwise what the scalar path caches."""
        batch, patterns = _mixed_batch(count=8, seed=11)
        plain = BatchConditions.from_arrays(batch.speed_kmh, batch.temperature_c)
        energies, phase_lists = evaluator.schedule_energy_sweep(
            plain, patterns, include_phases=True
        )
        for i in range(len(plain)):
            speed = float(plain.speed_kmh[i])
            point = OperatingPoint(
                speed_kmh=speed, temperature_c=float(plain.temperature_c[i])
            )
            schedule = node.schedule_for_pattern(
                speed,
                transmits=bool(patterns[i, 0]),
                refreshes_slow=bool(patterns[i, 1]),
                writes_nvm=bool(patterns[i, 2]),
            )
            total, phases = evaluator.schedule_energy_compiled(schedule, point)
            assert float(energies[i]) == total
            assert phase_lists[i] == phases

    def test_shared_speed_pattern_bins_share_one_schedule(self, evaluator, monkeypatch):
        """One schedule build per unique (speed, pattern), not per point."""
        from repro.blocks.node import SensorNode

        builds = []
        original = SensorNode.schedule_for_pattern

        def counting(self, speed_kmh, **kwargs):
            builds.append(speed_kmh)
            return original(self, speed_kmh, **kwargs)

        monkeypatch.setattr(SensorNode, "schedule_for_pattern", counting)
        speeds = np.array([60.0, 60.0, 90.0, 90.0, 60.0])
        batch = BatchConditions.from_arrays(speeds, 25.0)
        patterns = np.array([ALL_PATTERNS[0]] * 5)
        evaluator.schedule_energy_sweep(batch, patterns)
        assert len(builds) == 2

    def test_empty_batch(self, evaluator):
        batch = BatchConditions.from_arrays(np.empty(0), np.empty(0))
        energies = evaluator.schedule_energy_sweep(batch, np.empty((0, 3), dtype=bool))
        assert energies.shape == (0,)

    def test_infeasible_speed_raises_schedule_error(self, evaluator):
        batch = BatchConditions.from_arrays(np.array([1500.0]), 25.0)
        with pytest.raises(ScheduleError):
            evaluator.schedule_energy_sweep(
                batch, np.array([[True, True, False]])
            )

    def test_non_boolean_patterns_rejected(self, evaluator):
        batch = BatchConditions.from_arrays(np.array([60.0]), 25.0)
        with pytest.raises(AnalysisError, match="boolean"):
            evaluator.schedule_energy_sweep(batch, np.array([[1, 0, 0]]))

    def test_pattern_shape_validated(self, evaluator):
        batch = BatchConditions.from_arrays(np.array([60.0, 80.0]), 25.0)
        with pytest.raises(AnalysisError, match=r"\(N, 3\)"):
            evaluator.schedule_energy_sweep(
                batch, np.array([[True, False]], dtype=bool)
            )
        with pytest.raises(AnalysisError, match="one phase pattern per batch point"):
            evaluator.schedule_energy_sweep(
                batch, np.array([[True, False, True]], dtype=bool)
            )

    def test_negative_activity_rejected(self):
        with pytest.raises(ConfigurationError, match="activity"):
            BatchConditions.from_arrays(
                np.array([60.0]), 25.0, activity=np.array([-0.5])
            )

    def test_nan_activity_rejected(self):
        with pytest.raises(ConfigurationError, match="activity"):
            BatchConditions.from_arrays(
                np.array([60.0]), 25.0, activity=np.array([float("nan")])
            )


class TestAverageSweepActivity:
    """Per-point activity on the *average* batch path vs a scalar reference."""

    @staticmethod
    def _scalar_average_with_activity(evaluator, point, activity_scale):
        """Replicate ``average_report`` with the activity-scale semantics."""
        node = evaluator.node
        database = evaluator.database
        node.schedule_for(point.speed_kmh, revolution_index=0)
        period = node.wheel.revolution_period_s(point.speed_kmh)
        resting = node.resting_modes()
        block_dynamic, block_static, resting_power = {}, {}, {}
        for block, resting_mode in resting.items():
            breakdown = database.power(block, resting_mode, point)
            resting_power[block] = breakdown
            block_dynamic[block] = breakdown.dynamic_w * period
            block_static[block] = breakdown.static_w * period
        for phase, weight in node.phase_census(point.speed_kmh):
            for block, mode in phase.block_modes.items():
                active = database.power(
                    block,
                    mode,
                    point,
                    activity=phase.activity_of(block) * activity_scale,
                )
                rest = resting_power[block]
                block_dynamic[block] += (
                    weight * (active.dynamic_w - rest.dynamic_w) * phase.duration_s
                )
                block_static[block] += (
                    weight * (active.static_w - rest.static_w) * phase.duration_s
                )
        return sum(max(0.0, v) for v in block_dynamic.values()) + sum(
            max(0.0, v) for v in block_static.values()
        )

    def test_average_energy_sweep_honours_activity(self, evaluator):
        speeds = np.array([40.0, 40.0, 95.0, 140.0])
        temperatures = np.array([-10.0, 85.0, 25.0, 60.0])
        activities = np.array([0.5, 0.8, 1.0, 1.25])
        batch = BatchConditions.from_arrays(
            speeds, temperatures, activity=activities
        )
        energies = evaluator.average_energy_sweep(batch)
        for i in range(len(batch)):
            point = OperatingPoint(
                speed_kmh=float(speeds[i]), temperature_c=float(temperatures[i])
            )
            reference = self._scalar_average_with_activity(
                evaluator, point, float(activities[i])
            )
            assert energies[i] == pytest.approx(reference, rel=RTOL)

    def test_activity_lowers_the_dynamic_energy(self, evaluator):
        speeds = np.full(2, 80.0)
        low = BatchConditions.from_arrays(speeds, 25.0, activity=np.array([0.5, 0.5]))
        high = BatchConditions.from_arrays(speeds, 25.0, activity=np.array([1.0, 1.0]))
        assert np.all(
            evaluator.average_energy_sweep(low) < evaluator.average_energy_sweep(high)
        )

    def test_speed_dependent_census_with_activity_rejected(
        self, node, database, monkeypatch
    ):
        """The scalar fallback cannot represent per-point activity."""
        from repro.blocks.node import SensorNode
        from repro.timing.schedule import Phase

        original = SensorNode.phase_census

        def speed_dependent(self, speed_kmh):
            census = list(original(self, speed_kmh))
            if speed_kmh > 50.0:
                census.append(
                    (Phase(name="extra", duration_s=1e-4, block_modes={}), 0.5)
                )
            return census

        monkeypatch.setattr(SensorNode, "phase_census", speed_dependent)
        evaluator = EnergyEvaluator(node, database)
        batch = BatchConditions.from_arrays(
            np.array([40.0, 90.0]), 25.0, activity=np.array([0.7, 0.7])
        )
        with pytest.raises(AnalysisError, match="activity"):
            evaluator.average_energy_sweep(batch)


class TestCensusTimingCache:
    def test_shared_across_evaluator_instances(self, node, database, monkeypatch):
        """A second evaluator for an equal node reuses the census timing."""
        from repro.blocks.node import SensorNode

        clear_census_timing_cache()
        calls = []
        original = SensorNode.phase_census

        def counting(self, speed_kmh):
            calls.append(speed_kmh)
            return original(self, speed_kmh)

        monkeypatch.setattr(SensorNode, "phase_census", counting)
        points = [OperatingPoint(speed_kmh=s) for s in (50.0, 75.0)]

        first = EnergyEvaluator(node, database)
        first.average_energy_sweep(points)
        assert sorted(calls) == [50.0, 75.0]

        second = EnergyEvaluator(node, database)
        second.average_energy_sweep(points)
        assert sorted(calls) == [50.0, 75.0], "census timing was recomputed"

    def test_results_identical_with_cold_and_warm_cache(self, node, database):
        points = [OperatingPoint(speed_kmh=s) for s in (35.0, 120.0)]
        clear_census_timing_cache()
        cold = EnergyEvaluator(node, database).average_energy_sweep(points)
        warm = EnergyEvaluator(node, database).average_energy_sweep(points)
        assert np.array_equal(cold, warm)

    def test_infeasible_speed_still_raises(self, node, database):
        clear_census_timing_cache()
        evaluator = EnergyEvaluator(node, database)
        with pytest.raises(ScheduleError):
            evaluator.average_energy_sweep([OperatingPoint(speed_kmh=1500.0)])
        # And keeps raising: infeasible speeds are never cached.
        with pytest.raises(ScheduleError):
            evaluator.average_energy_sweep([OperatingPoint(speed_kmh=1500.0)])
