"""Tests for the end-to-end energy analysis flow (Fig. 1)."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.core.flow import EnergyAnalysisFlow
from repro.errors import AnalysisError
from repro.vehicle.drive_cycle import urban_cycle


@pytest.fixture
def flow(node, database, scavenger, storage):
    return EnergyAnalysisFlow(node, database, scavenger, storage=storage)


@pytest.fixture
def report(flow):
    return flow.run(speeds_kmh=list(range(5, 205, 10)))


class TestFlowSteps:
    def test_power_table_is_populated(self, report):
        assert len(report.power_table) > 10

    def test_energy_report_is_populated(self, report):
        assert report.energy_report is not None
        assert report.energy_report.total_energy_j > 0.0

    def test_duty_cycles_are_populated(self, report):
        assert report.duty_cycles is not None
        assert len(report.duty_cycles.entries) > 5

    def test_optimization_reduces_energy(self, report):
        assert report.optimization is not None
        assert report.optimization.energy_after_j < report.optimization.energy_before_j

    def test_re_estimated_report_matches_optimization_outcome(self, report):
        assert report.energy_report_after is not None
        assert report.energy_report_after.total_energy_j == pytest.approx(
            report.optimization.energy_after_j
        )

    def test_balance_curves_are_produced(self, report):
        assert report.balance_before is not None
        assert report.balance_after is not None

    def test_optimization_lowers_break_even(self, report):
        assert report.break_even_after_kmh < report.break_even_before_kmh

    def test_summary_contains_headline_numbers(self, report):
        summary = report.summary()
        assert "energy_per_rev_uj" in summary
        assert "break_even_before_kmh" in summary
        assert summary["energy_saving_pct"] > 0.0


class TestFlowOptions:
    def test_flow_without_optimization(self, node, database, scavenger):
        flow = EnergyAnalysisFlow(node, database, scavenger)
        report = flow.run(optimize=False, speeds_kmh=[10.0, 60.0, 120.0])
        assert report.optimization is None
        assert report.balance_after is None
        assert report.break_even_after_kmh is None

    def test_flow_with_emulation(self, flow):
        report = flow.run(
            speeds_kmh=[10.0, 60.0, 120.0], drive_cycle=urban_cycle(repetitions=1)
        )
        assert report.emulation is not None
        assert report.window_summary is not None
        assert report.emulation.revolutions > 0

    def test_emulation_requires_storage(self, node, database, scavenger):
        flow = EnergyAnalysisFlow(node, database, scavenger, storage=None)
        with pytest.raises(AnalysisError):
            flow.run(drive_cycle=urban_cycle(repetitions=1))

    def test_flow_rejects_stationary_point(self, flow):
        with pytest.raises(AnalysisError):
            flow.run(point=OperatingPoint(speed_kmh=0.0))

    def test_flow_rejects_degenerate_speed_grid(self, flow):
        with pytest.raises(AnalysisError):
            flow.run(speeds_kmh=[60.0])

    def test_flow_at_custom_condition(self, node, database, scavenger):
        flow = EnergyAnalysisFlow(node, database, scavenger)
        hot = flow.run(
            point=OperatingPoint(speed_kmh=60.0, temperature_c=105.0),
            speeds_kmh=[20.0, 60.0, 120.0],
        )
        nominal = flow.run(speeds_kmh=[20.0, 60.0, 120.0])
        assert (
            hot.energy_report.total_energy_j > nominal.energy_report.total_energy_j
        )


class TestCrossArchitectureFlow:
    def test_optimized_architecture_flow_reaches_lower_break_even(
        self, node, optimized, database, scavenger
    ):
        speeds = list(range(5, 205, 10))
        baseline_report = EnergyAnalysisFlow(node, database, scavenger).run(
            speeds_kmh=speeds
        )
        optimized_report = EnergyAnalysisFlow(optimized, database, scavenger).run(
            speeds_kmh=speeds
        )
        assert (
            optimized_report.break_even_after_kmh
            < baseline_report.break_even_before_kmh
        )

    def test_flow_report_carries_architecture_name(self, report):
        assert report.node_name == "baseline"


class TestFlowFromSpec:
    def test_from_spec_builds_the_described_experiment(self):
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec(architecture="optimized", temperature_c=85.0)
        flow = EnergyAnalysisFlow.from_spec(spec)
        assert flow.node.name == "optimized"
        assert flow.default_point.temperature_c == 85.0
        assert flow.storage is not None

    def test_from_spec_run_uses_the_spec_environment(self):
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec(speed_kmh=90.0, temperature_c=-20.0)
        report = EnergyAnalysisFlow.from_spec(spec).run(speeds_kmh=[20.0, 60.0, 120.0])
        assert report.point.speed_kmh == 90.0
        assert report.point.temperature_c == -20.0

    def test_from_spec_cycle_becomes_the_default_emulation(self):
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec(
            drive_cycle={"name": "urban", "params": {"repetitions": 1}}
        )
        report = EnergyAnalysisFlow.from_spec(spec).run(speeds_kmh=[20.0, 60.0, 120.0])
        assert report.emulation is not None
        assert report.emulation.cycle_name == "urban-x1"

    def test_spec_without_storage_skips_emulation_despite_cycle(self):
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec(storage=None, drive_cycle="nedc")
        report = EnergyAnalysisFlow.from_spec(spec).run(speeds_kmh=[20.0, 60.0, 120.0])
        assert report.emulation is None

    def test_explicit_none_cycle_skips_the_emulation(self):
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec(
            drive_cycle={"name": "urban", "params": {"repetitions": 1}}
        )
        report = EnergyAnalysisFlow.from_spec(spec).run(
            drive_cycle=None, speeds_kmh=[20.0, 60.0, 120.0]
        )
        assert report.emulation is None

    def test_explicit_arguments_still_win(self):
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec(speed_kmh=90.0)
        report = EnergyAnalysisFlow.from_spec(spec).run(
            point=OperatingPoint(speed_kmh=60.0), speeds_kmh=[20.0, 60.0, 120.0]
        )
        assert report.point.speed_kmh == 60.0
