"""Tests for operating-window extraction and summarization."""

from __future__ import annotations

import pytest

from repro.core.emulator import EmulationResult, EmulationSample, NodeEmulator
from repro.core.operating_window import (
    OperatingWindow,
    OperatingWindowSummary,
    find_operating_windows,
    summarize_windows,
)
from repro.errors import AnalysisError
from repro.scavenger.storage import supercapacitor
from repro.vehicle.drive_cycle import constant_cruise


def synthetic_result(active_pattern, dt_s=1.0) -> EmulationResult:
    """Build an emulation result with a given per-second activity pattern."""
    samples = [
        EmulationSample(
            time_s=index * dt_s,
            speed_kmh=50.0,
            temperature_c=25.0,
            state_of_charge=0.5,
            node_active=bool(active),
        )
        for index, active in enumerate(active_pattern)
    ]
    return EmulationResult(
        node_name="synthetic",
        cycle_name="synthetic",
        duration_s=len(active_pattern) * dt_s,
        samples=samples,
    )


class TestOperatingWindow:
    def test_duration(self):
        assert OperatingWindow(start_s=10.0, end_s=25.0).duration_s == 15.0

    def test_rejects_empty_window(self):
        with pytest.raises(AnalysisError):
            OperatingWindow(start_s=10.0, end_s=10.0)


class TestFindWindows:
    def test_single_window(self):
        result = synthetic_result([0, 1, 1, 1, 0, 0])
        windows = find_operating_windows(result)
        assert len(windows) == 1
        assert windows[0].start_s == 1.0
        assert windows[0].end_s == 4.0

    def test_multiple_windows(self):
        result = synthetic_result([1, 1, 0, 0, 1, 1, 1, 0])
        windows = find_operating_windows(result)
        assert len(windows) == 2
        assert windows[0].duration_s == pytest.approx(2.0)
        assert windows[1].duration_s == pytest.approx(3.0)

    def test_window_open_at_the_end_is_closed_at_cycle_end(self):
        result = synthetic_result([0, 0, 1, 1])
        windows = find_operating_windows(result)
        assert len(windows) == 1
        assert windows[0].end_s == pytest.approx(result.duration_s)

    def test_fully_inactive_gives_no_windows(self):
        assert find_operating_windows(synthetic_result([0, 0, 0])) == []

    def test_fully_active_gives_one_window(self):
        windows = find_operating_windows(synthetic_result([1, 1, 1, 1]))
        assert len(windows) == 1
        assert windows[0].duration_s == pytest.approx(4.0)

    def test_minimum_duration_filter(self):
        result = synthetic_result([1, 0, 1, 1, 1, 1, 0])
        windows = find_operating_windows(result, minimum_duration_s=2.0)
        assert len(windows) == 1
        assert windows[0].duration_s >= 2.0

    def test_no_samples_raises(self):
        result = synthetic_result([1])
        result.samples = []
        with pytest.raises(AnalysisError):
            find_operating_windows(result)

    def test_negative_minimum_duration_rejected(self):
        with pytest.raises(AnalysisError):
            find_operating_windows(synthetic_result([1, 0]), minimum_duration_s=-1.0)


class TestSummaries:
    def test_summary_statistics(self):
        windows = [
            OperatingWindow(0.0, 10.0),
            OperatingWindow(20.0, 25.0),
            OperatingWindow(30.0, 45.0),
        ]
        summary = summarize_windows(windows, total_duration_s=50.0)
        assert summary.window_count == 3
        assert summary.covered_s == pytest.approx(30.0)
        assert summary.longest_s == pytest.approx(15.0)
        assert summary.shortest_s == pytest.approx(5.0)
        assert summary.mean_s == pytest.approx(10.0)
        assert summary.coverage_fraction == pytest.approx(0.6)

    def test_empty_summary(self):
        summary = summarize_windows([], total_duration_s=100.0)
        assert summary == OperatingWindowSummary.empty()

    def test_invalid_total_duration_rejected(self):
        with pytest.raises(AnalysisError):
            summarize_windows([], total_duration_s=0.0)

    def test_coverage_capped_at_one(self):
        windows = [OperatingWindow(0.0, 100.0)]
        assert summarize_windows(windows, total_duration_s=50.0).coverage_fraction == 1.0


class TestEndToEndWithEmulator:
    def test_surplus_cruise_has_full_coverage(self, node, database, scavenger):
        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        result = emulator.emulate(constant_cruise(120.0, duration_s=120.0))
        windows = find_operating_windows(result)
        summary = summarize_windows(windows, result.duration_s)
        assert summary.window_count == 1
        assert summary.coverage_fraction > 0.95

    def test_deficit_cruise_has_partial_coverage(self, node, database, scavenger):
        storage = supercapacitor(capacity_j=0.05, initial_fraction=0.3)
        emulator = NodeEmulator(node, database, scavenger, storage)
        result = emulator.emulate(constant_cruise(15.0, duration_s=900.0))
        windows = find_operating_windows(result)
        summary = summarize_windows(windows, result.duration_s)
        assert summary.coverage_fraction < 0.9
