"""Scalar <-> vectorized equivalence of the batch evaluation engine.

Every batch API (`average_energy_sweep`, `standstill_power_sweep`,
`energy_grid`, the batched balance curve and break-even search, and the
compiled schedule path used by the emulator) must reproduce the scalar
reference path within 1e-9 relative tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.conditions.batch import BatchConditions
from repro.conditions.operating_point import (
    OperatingPoint,
    best_case_operating_point,
    worst_case_operating_point,
)
from repro.conditions.process import ProcessCorner, ProcessVariation
from repro.conditions.supply import SupplyCondition, SupplyRail
from repro.core.balance import EnergyBalanceAnalysis
from repro.core.evaluator import EnergyEvaluator
from repro.errors import AnalysisError, ConfigurationError

RTOL = 1e-9


def sweep_points() -> list[OperatingPoint]:
    """Speeds x temperatures x supply corners x process corners."""
    points = []
    for speed in (15.0, 60.0, 133.7):
        for temperature in (-40.0, 25.0, 125.0):
            points.append(OperatingPoint(speed_kmh=speed, temperature_c=temperature))
    for supply in (1.05, 1.32):
        rail = SupplyRail(name="vdd_core", nominal_v=supply, tolerance=0.0)
        points.append(
            OperatingPoint(speed_kmh=80.0, supply=SupplyCondition(rail=rail))
        )
    for corner in ProcessCorner:
        points.append(
            OperatingPoint(speed_kmh=45.0, process=ProcessVariation(corner=corner))
        )
    points.append(worst_case_operating_point(90.0))
    points.append(best_case_operating_point(25.0))
    return points


@pytest.fixture
def evaluator(node, database) -> EnergyEvaluator:
    return EnergyEvaluator(node, database)


class TestAverageEnergySweep:
    def test_matches_scalar_reports(self, evaluator):
        points = sweep_points()
        batch = evaluator.average_energy_sweep(points)
        scalar = np.array([evaluator.energy_per_revolution_j(p) for p in points])
        assert np.allclose(batch, scalar, rtol=RTOL, atol=0.0)

    def test_components_match_scalar_reports(self, evaluator):
        points = sweep_points()
        dynamic, static, period = evaluator.average_components_sweep(points)
        for i, point in enumerate(points):
            report = evaluator.average_report(point)
            assert dynamic[i] == pytest.approx(report.dynamic_energy_j, rel=RTOL)
            assert static[i] == pytest.approx(report.static_energy_j, rel=RTOL)
            assert period[i] == pytest.approx(report.period_s, rel=RTOL)

    def test_power_sweep_matches_scalar(self, evaluator):
        points = sweep_points()
        batch = evaluator.average_power_sweep(points)
        scalar = np.array([evaluator.average_power_w(p) for p in points])
        assert np.allclose(batch, scalar, rtol=RTOL, atol=0.0)

    def test_accepts_batch_conditions(self, evaluator):
        points = sweep_points()
        batch = BatchConditions.from_points(points)
        assert np.allclose(
            evaluator.average_energy_sweep(batch),
            evaluator.average_energy_sweep(points),
            rtol=0.0,
        )

    def test_empty_sweep(self, evaluator):
        assert evaluator.average_energy_sweep([]).shape == (0,)

    def test_stationary_point_rejected(self, evaluator):
        with pytest.raises(AnalysisError):
            evaluator.average_energy_sweep([OperatingPoint(speed_kmh=0.0)])


class TestStandstillSweep:
    def test_matches_scalar(self, evaluator):
        points = sweep_points() + [OperatingPoint(speed_kmh=0.0, temperature_c=85.0)]
        batch = evaluator.standstill_power_sweep(points)
        scalar = np.array([evaluator.standstill_power_w(p) for p in points])
        assert np.allclose(batch, scalar, rtol=RTOL, atol=0.0)


class TestEnergyGrid:
    def test_matches_scalar_double_loop(self, evaluator):
        speeds = np.linspace(20.0, 160.0, 8)
        temperatures = np.linspace(-40.0, 125.0, 5)
        grid = evaluator.energy_grid(speeds, temperatures)
        assert grid.energy_j.shape == (8, 5)
        for i, speed in enumerate(speeds):
            for j, temperature in enumerate(temperatures):
                point = OperatingPoint(speed_kmh=speed, temperature_c=temperature)
                report = evaluator.average_report(point)
                assert grid.energy_j[i, j] == pytest.approx(
                    report.total_energy_j, rel=RTOL
                )
                assert grid.average_power_w[i, j] == pytest.approx(
                    report.average_power_w, rel=RTOL
                )

    def test_static_fraction_in_bounds(self, evaluator):
        grid = evaluator.energy_grid((40.0, 90.0), (-20.0, 25.0, 105.0))
        fraction = grid.static_fraction
        assert np.all((fraction >= 0.0) & (fraction <= 1.0))

    def test_base_point_conditions_are_honoured(self, evaluator):
        hot_corner = worst_case_operating_point()
        grid = evaluator.energy_grid((60.0,), (125.0,), base_point=hot_corner)
        assert grid.energy_j[0, 0] == pytest.approx(
            evaluator.energy_per_revolution_j(worst_case_operating_point(60.0)),
            rel=RTOL,
        )


class TestBatchConditions:
    def test_grid_layout_is_row_major(self):
        batch = BatchConditions.grid((10.0, 20.0), (0.0, 25.0, 50.0))
        assert len(batch) == 6
        assert list(batch.speed_kmh) == [10.0, 10.0, 10.0, 20.0, 20.0, 20.0]
        assert list(batch.temperature_c) == [0.0, 25.0, 50.0] * 2

    def test_from_points_roundtrip(self):
        point = worst_case_operating_point(77.0)
        batch = BatchConditions.from_points([point])
        rebuilt = batch.point_at(0)
        assert rebuilt.speed_kmh == point.speed_kmh
        assert rebuilt.temperature_c == point.temperature_c
        assert rebuilt.supply_voltage == pytest.approx(point.supply_voltage)
        assert rebuilt.process.dynamic_factor == pytest.approx(
            point.process.dynamic_factor
        )
        assert rebuilt.process.leakage_factor == pytest.approx(
            point.process.leakage_factor
        )

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchConditions(
                speed_kmh=np.array([60.0]),
                temperature_c=np.array([25.0, 30.0]),
                supply_v=np.array([1.2]),
                dynamic_factor=np.array([1.0]),
                leakage_factor=np.array([1.0]),
            )

    def test_out_of_range_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchConditions.from_arrays([60.0], [400.0])

    def test_nan_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchConditions.from_arrays([60.0], [float("nan")])

    def test_non_positive_process_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchConditions.from_arrays([60.0], [25.0], dynamic_factor=0.0)
        with pytest.raises(ConfigurationError):
            BatchConditions.from_arrays([60.0], [25.0], leakage_factor=-1.0)


class TestBalanceBatchEquivalence:
    @pytest.fixture
    def analysis(self, node, database, scavenger):
        return EnergyBalanceAnalysis(node, database, scavenger)

    def test_curve_matches_scalar_curve(self, analysis):
        speeds = list(range(10, 200, 10))
        batched = analysis.curve(speeds, use_batch=True)
        scalar = analysis.curve(speeds, use_batch=False)
        for a, b in zip(batched.points, scalar.points):
            assert a.speed_kmh == b.speed_kmh
            assert a.required_j == pytest.approx(b.required_j, rel=RTOL)
            assert a.generated_j == pytest.approx(b.generated_j, rel=RTOL)

    def test_break_even_matches_bisection(self, analysis):
        batched = analysis.break_even_speed_kmh(use_batch=True)
        bisected = analysis.break_even_speed_kmh(use_batch=False)
        assert batched is not None and bisected is not None
        # Both are midpoints of brackets no wider than the 0.1 km/h tolerance.
        assert batched == pytest.approx(bisected, abs=0.2)

    def test_surplus_at_low_bound_returns_before_touching_high_bound(
        self, node, database, scavenger
    ):
        """A node in surplus at low_kmh must not evaluate the (possibly
        schedule-infeasible) high bound — same order as the scalar path."""
        oversized = EnergyBalanceAnalysis(node, database, scavenger.scaled(10000.0))
        assert oversized.break_even_speed_kmh(high_kmh=1000.0, use_batch=True) == 5.0
        assert oversized.break_even_speed_kmh(high_kmh=1000.0, use_batch=False) == 5.0

    def test_break_even_none_cases_agree(self, node, database, scavenger):
        starved = EnergyBalanceAnalysis(node, database, scavenger.scaled(1e-6))
        assert starved.break_even_speed_kmh(use_batch=True) is None
        assert starved.break_even_speed_kmh(use_batch=False) is None

    def test_margins_sweep_matches_balance_at(self, analysis):
        speeds = [20.0, 60.0, 140.0]
        margins = analysis.margins_sweep(speeds)
        for speed, margin in zip(speeds, margins):
            scalar = analysis.balance_at(OperatingPoint(speed_kmh=speed)).margin_j
            assert margin == pytest.approx(scalar, rel=RTOL, abs=1e-18)


class TestStalenessAndRemapping:
    def test_compiled_table_tracks_in_place_database_mutation(self, evaluator):
        """add()/remove() on the adapted database must rebuild the table."""
        point = OperatingPoint(speed_kmh=60.0)
        before = evaluator.average_energy_sweep([point])[0]
        entry = evaluator.database.entry("mcu", "active")
        evaluator.database.remove("mcu", "active")
        evaluator.database.add(entry.scaled(dynamic_factor=0.5))
        after_batch = evaluator.average_energy_sweep([point])[0]
        after_scalar = evaluator.energy_per_revolution_j(point)
        assert after_batch == pytest.approx(after_scalar, rel=RTOL)
        assert after_batch < before

    def test_compiled_table_tracks_database_rebinding(self, evaluator):
        """Rebinding evaluator.database to a new object must rebuild too."""
        point = OperatingPoint(speed_kmh=60.0)
        evaluator.average_energy_sweep([point])  # build the table
        evaluator.database = evaluator.database.map_entries(
            lambda entry: entry.scaled(dynamic_factor=0.5)
        )
        batch = evaluator.average_energy_sweep([point])[0]
        scalar = evaluator.energy_per_revolution_j(point)
        assert batch == pytest.approx(scalar, rel=RTOL)

    def test_curve_with_speed_remapping_factory_matches_scalar(
        self, node, database, scavenger
    ):
        """A factory that remaps the sweep speed must not split the paths."""
        analysis = EnergyBalanceAnalysis(node, database, scavenger)
        def factory(speed):
            return OperatingPoint(speed_kmh=1.05 * speed)
        speeds = [20.0, 60.0, 120.0]
        batched = analysis.curve(speeds, point_factory=factory, use_batch=True)
        scalar = analysis.curve(speeds, point_factory=factory, use_batch=False)
        for a, b in zip(batched.points, scalar.points):
            assert a.speed_kmh == b.speed_kmh
            assert a.generated_j == pytest.approx(b.generated_j, rel=RTOL)
            assert a.required_j == pytest.approx(b.required_j, rel=RTOL)


class TestActivityFactorEquivalence:
    """Exercise the activity-exponent branches both compiled paths mirror."""

    def test_schedule_with_activity_factors_matches_scalar(self, node, evaluator):
        from repro.timing.schedule import Phase, RevolutionSchedule

        resting = node.resting_modes()
        phases = (
            Phase(
                name="acquire",
                duration_s=0.002,
                block_modes={"mcu": "active", "adc": "active"},
                activities={"mcu": 0.6, "adc": 1.4},
            ),
        )
        schedule = RevolutionSchedule(period_s=0.05, phases=phases, blocks=resting)
        point = OperatingPoint(speed_kmh=60.0)
        total, _ = evaluator.schedule_energy_compiled(schedule, point)
        report = evaluator.schedule_report(schedule, point)
        assert total == pytest.approx(report.total_energy_j, rel=RTOL)

    def test_batch_average_with_activity_factors_matches_scalar(
        self, node, database, monkeypatch
    ):
        from repro.blocks.node import SensorNode
        from repro.timing.schedule import Phase

        original = SensorNode.phase_census

        def with_activities(self, speed_kmh):
            census = []
            for phase, weight in original(self, speed_kmh):
                if phase.name == "compute":
                    phase = Phase(
                        name=phase.name,
                        duration_s=phase.duration_s,
                        block_modes=dict(phase.block_modes),
                        activities={"mcu": 0.7},
                    )
                census.append((phase, weight))
            return census

        monkeypatch.setattr(SensorNode, "phase_census", with_activities)
        evaluator = EnergyEvaluator(node, database)
        points = [OperatingPoint(speed_kmh=s) for s in (40.0, 90.0)]
        batch = evaluator.average_energy_sweep(points)
        scalar = np.array([evaluator.energy_per_revolution_j(p) for p in points])
        assert np.allclose(batch, scalar, rtol=RTOL, atol=0.0)


class TestCompiledSchedulePath:
    def test_schedule_energy_matches_schedule_report(self, node, evaluator):
        for speed, revolution in ((30.0, 0), (90.0, 1), (150.0, 7)):
            point = OperatingPoint(speed_kmh=speed, temperature_c=60.0)
            schedule = node.schedule_for(speed, revolution)
            total, phases = evaluator.schedule_energy_compiled(schedule, point)
            report = evaluator.schedule_report(schedule, point)
            assert total == pytest.approx(report.total_energy_j, rel=RTOL)
            assert len(phases) == len(report.phases)
            for (name, duration, power), phase in zip(phases, report.phases):
                assert name == phase.phase
                assert duration == pytest.approx(phase.duration_s, rel=RTOL)
                assert power == pytest.approx(phase.average_power_w, rel=RTOL)


class TestEnergyGridEdgeCases:
    def test_empty_speed_axis_rejected(self, evaluator):
        with pytest.raises(AnalysisError, match="at least one speed"):
            evaluator.energy_grid(np.empty(0), np.array([25.0]))

    def test_empty_temperature_axis_rejected(self, evaluator):
        with pytest.raises(AnalysisError, match="at least one speed"):
            evaluator.energy_grid(np.array([60.0]), np.empty(0))

    def test_single_point_grid(self, evaluator):
        grid = evaluator.energy_grid(np.array([60.0]), np.array([25.0]))
        assert grid.energy_j.shape == (1, 1)
        scalar = evaluator.energy_per_revolution_j(
            OperatingPoint(speed_kmh=60.0, temperature_c=25.0)
        )
        assert grid.energy_j[0, 0] == pytest.approx(scalar, rel=RTOL)
        assert grid.period_s.shape == (1,)

    def test_non_contiguous_input_arrays(self, evaluator):
        """Strided views (e.g. every other element) must work unchanged."""
        speeds = np.linspace(20.0, 160.0, 12)[::2]
        temperatures = np.linspace(-40.0, 125.0, 10)[::3]
        assert not speeds.flags["C_CONTIGUOUS"] or speeds.base is not None
        strided = evaluator.energy_grid(speeds, temperatures)
        contiguous = evaluator.energy_grid(
            np.ascontiguousarray(speeds), np.ascontiguousarray(temperatures)
        )
        assert np.array_equal(strided.energy_j, contiguous.energy_j)
        assert np.array_equal(strided.period_s, contiguous.period_s)

    def test_reversed_axes_match_point_queries(self, evaluator):
        """Descending (negatively strided) axes keep row-major correspondence."""
        speeds = np.array([120.0, 60.0, 30.0])[::-1]
        temperatures = np.array([85.0, -10.0])[::-1]
        grid = evaluator.energy_grid(speeds, temperatures)
        for i, speed in enumerate(speeds):
            for j, temperature in enumerate(temperatures):
                scalar = evaluator.energy_per_revolution_j(
                    OperatingPoint(
                        speed_kmh=float(speed), temperature_c=float(temperature)
                    )
                )
                assert grid.energy_j[i, j] == pytest.approx(scalar, rel=RTOL)
