"""Tests for the per-wheel-round energy evaluator."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.core.evaluator import EnergyEvaluator
from repro.errors import AnalysisError


@pytest.fixture
def evaluator(node, database):
    return EnergyEvaluator(node, database)


class TestRevolutionReport:
    def test_total_is_sum_of_blocks(self, evaluator, point):
        report = evaluator.revolution_report(point)
        assert report.total_energy_j == pytest.approx(
            sum(b.total_j for b in report.blocks)
        )

    def test_total_is_dynamic_plus_static(self, evaluator, point):
        report = evaluator.revolution_report(point)
        assert report.total_energy_j == pytest.approx(
            report.dynamic_energy_j + report.static_energy_j
        )

    def test_phase_energies_sum_to_total(self, evaluator, point):
        report = evaluator.revolution_report(point)
        assert sum(p.energy_j for p in report.phases) == pytest.approx(
            report.total_energy_j
        )

    def test_phase_durations_cover_the_period(self, evaluator, point):
        report = evaluator.revolution_report(point)
        assert sum(p.duration_s for p in report.phases) == pytest.approx(report.period_s)

    def test_energy_of_block_lookup(self, evaluator, point):
        report = evaluator.revolution_report(point)
        assert report.energy_of("rf_tx").block == "rf_tx"

    def test_energy_of_missing_block_raises(self, evaluator, point):
        with pytest.raises(AnalysisError):
            evaluator.revolution_report(point).energy_of("gpu")

    def test_transmitting_revolution_costs_more(self, evaluator, point, node):
        tx_node = node.with_radio(node.radio.__class__(tx_interval_revs=4))
        tx_evaluator = EnergyEvaluator(tx_node, evaluator.database)
        with_tx = tx_evaluator.revolution_report(point, revolution_index=0)
        without_tx = tx_evaluator.revolution_report(point, revolution_index=1)
        assert with_tx.total_energy_j > without_tx.total_energy_j

    def test_dominant_blocks_ordering(self, evaluator, point):
        dominant = evaluator.revolution_report(point).dominant_blocks(3)
        assert dominant[0].total_j >= dominant[1].total_j >= dominant[2].total_j

    def test_radio_dominates_transmitting_revolution(self, evaluator, point):
        report = evaluator.revolution_report(point, revolution_index=0)
        assert "rf_tx" in {b.block for b in report.dominant_blocks(3)}

    def test_as_rows_shares_sum_to_100_percent(self, evaluator, point):
        rows = evaluator.revolution_report(point).as_rows()
        assert sum(row["share_pct"] for row in rows) == pytest.approx(100.0)


class TestAverageReport:
    def test_average_matches_explicit_enumeration(self, evaluator, point, node):
        """The analytic average equals the mean of explicit schedules over a
        hyperperiod of the conditional phases."""
        hyperperiod = (
            node.radio.tx_interval_revs * node.sensors.slow_refresh_interval_revs
        )
        explicit = [
            evaluator.revolution_report(point, revolution_index=i).total_energy_j
            for i in range(1, hyperperiod + 1)
        ]
        mean_explicit = sum(explicit) / len(explicit)
        # The NVM write happens only every 256 revolutions; its contribution
        # to the average is small but nonzero, hence the loose tolerance.
        assert evaluator.energy_per_revolution_j(point) == pytest.approx(
            mean_explicit, rel=0.02
        )

    def test_average_of_every_revolution_transmitter(self, evaluator, point):
        average = evaluator.average_report(point)
        single = evaluator.revolution_report(point, revolution_index=1)
        # With per-revolution TX the only conditional extras are slow sensors
        # and NVM, so the average sits slightly above a plain revolution.
        assert average.total_energy_j >= single.total_energy_j

    def test_average_report_has_no_phase_breakdown(self, evaluator, point):
        assert evaluator.average_report(point).phases == ()

    def test_requires_motion(self, evaluator):
        with pytest.raises(AnalysisError):
            evaluator.average_report(OperatingPoint(speed_kmh=0.0))

    def test_energy_decreases_with_speed(self, evaluator):
        slow = evaluator.energy_per_revolution_j(OperatingPoint(speed_kmh=20.0))
        fast = evaluator.energy_per_revolution_j(OperatingPoint(speed_kmh=150.0))
        assert fast < slow

    def test_average_power_increases_with_speed(self, evaluator):
        slow = evaluator.average_power_w(OperatingPoint(speed_kmh=20.0))
        fast = evaluator.average_power_w(OperatingPoint(speed_kmh=150.0))
        assert fast > slow

    def test_hot_condition_costs_more(self, evaluator, point):
        hot = evaluator.energy_per_revolution_j(point.at_temperature(125.0))
        assert hot > evaluator.energy_per_revolution_j(point)

    def test_energy_magnitude_is_tens_of_microjoules(self, evaluator, point):
        energy = evaluator.energy_per_revolution_j(point)
        assert 10e-6 <= energy <= 500e-6


class TestDerivedFigures:
    def test_standstill_power_is_microwatt_class(self, evaluator, point):
        floor = evaluator.standstill_power_w(point)
        assert 1e-6 <= floor <= 100e-6

    def test_standstill_power_below_average_moving_power(self, evaluator, point):
        assert evaluator.standstill_power_w(point) < evaluator.average_power_w(point)

    def test_load_current_is_positive_and_small(self, evaluator, point):
        current = evaluator.load_current_a(point)
        assert 0.0 < current < 10e-3

    def test_load_current_uses_requested_rail(self, evaluator, point):
        assert evaluator.load_current_a(point, rail_voltage_v=3.0) < evaluator.load_current_a(
            point, rail_voltage_v=1.2
        )

    def test_load_current_rejects_bad_voltage(self, evaluator, point):
        with pytest.raises(AnalysisError):
            evaluator.load_current_a(point, rail_voltage_v=0.0)

    def test_duty_cycles_report_covers_all_blocks(self, evaluator, point, node):
        report = evaluator.duty_cycles(point)
        assert set(report.blocks) == set(node.block_names())
