"""Tests for the dynamic-spreadsheet what-if facade."""

from __future__ import annotations

import pytest

from repro.core.spreadsheet import Spreadsheet
from repro.errors import AnalysisError


@pytest.fixture
def spreadsheet(node, database):
    return Spreadsheet(node, database)


class TestSingleConditionViews:
    def test_power_table_covers_architecture_blocks(self, spreadsheet, node, point):
        rows = spreadsheet.power_table(point)
        assert {row["block"] for row in rows} == set(node.block_names())

    def test_energy_table_shares_sum_to_one(self, spreadsheet, point):
        rows = spreadsheet.energy_table(point)
        assert sum(row["share_pct"] for row in rows) == pytest.approx(100.0)

    def test_energy_report_matches_table_total(self, spreadsheet, point):
        report = spreadsheet.energy_report(point)
        rows = spreadsheet.energy_table(point)
        assert sum(row["total_uj"] for row in rows) == pytest.approx(
            report.total_energy_j * 1e6
        )


class TestTemperatureSweep:
    def test_energy_increases_with_temperature(self, spreadsheet):
        rows = spreadsheet.temperature_sweep([-40.0, 25.0, 85.0, 125.0])
        energies = [row.energy_per_rev_j for row in rows]
        assert energies == sorted(energies)

    def test_static_fraction_increases_with_temperature(self, spreadsheet):
        rows = spreadsheet.temperature_sweep([-40.0, 25.0, 125.0])
        fractions = [row.static_fraction for row in rows]
        assert fractions == sorted(fractions)

    def test_sweep_row_metadata(self, spreadsheet):
        rows = spreadsheet.temperature_sweep([0.0, 50.0])
        assert all(row.condition == "temperature_c" for row in rows)
        assert [row.value for row in rows] == [0.0, 50.0]


class TestSupplySweep:
    def test_energy_increases_with_supply(self, spreadsheet):
        rows = spreadsheet.supply_sweep([1.0, 1.2, 1.4])
        energies = [row.energy_per_rev_j for row in rows]
        assert energies == sorted(energies)

    def test_invalid_voltage_rejected(self, spreadsheet):
        with pytest.raises(AnalysisError):
            spreadsheet.supply_sweep([0.0])


class TestSpeedSweep:
    def test_energy_per_revolution_decreases_with_speed(self, spreadsheet):
        rows = spreadsheet.speed_sweep([20.0, 60.0, 120.0])
        energies = [row.energy_per_rev_j for row in rows]
        assert energies == sorted(energies, reverse=True)

    def test_average_power_increases_with_speed(self, spreadsheet):
        rows = spreadsheet.speed_sweep([20.0, 60.0, 120.0])
        powers = [row.average_power_w for row in rows]
        assert powers == sorted(powers)

    def test_invalid_speed_rejected(self, spreadsheet):
        with pytest.raises(AnalysisError):
            spreadsheet.speed_sweep([0.0])


class TestMonteCarlo:
    def test_statistics_are_consistent(self, spreadsheet):
        stats = spreadsheet.process_monte_carlo(sample_count=32, seed=7)
        assert stats["min_j"] <= stats["mean_j"] <= stats["max_j"]
        assert stats["std_j"] > 0.0
        assert stats["samples"] == 32.0

    def test_reproducible_with_seed(self, spreadsheet):
        first = spreadsheet.process_monte_carlo(sample_count=16, seed=3)
        second = spreadsheet.process_monte_carlo(sample_count=16, seed=3)
        assert first == second

    def test_requires_at_least_two_samples(self, spreadsheet):
        with pytest.raises(AnalysisError):
            spreadsheet.process_monte_carlo(sample_count=1)

    def test_spread_is_modest_relative_to_mean(self, spreadsheet):
        stats = spreadsheet.process_monte_carlo(sample_count=64, seed=1)
        assert stats["std_j"] < 0.5 * stats["mean_j"]


class TestArchitectureComparison:
    def test_comparison_includes_own_architecture_first(self, spreadsheet, optimized):
        rows = spreadsheet.compare_architectures([optimized])
        assert rows[0]["architecture"] == "baseline"
        assert rows[1]["architecture"] == "optimized"

    def test_comparison_reports_lower_energy_for_optimized(self, spreadsheet, optimized):
        rows = spreadsheet.compare_architectures([optimized])
        baseline_energy = rows[0]["energy_per_rev_uj"]
        optimized_energy = rows[1]["energy_per_rev_uj"]
        assert optimized_energy < baseline_energy

    def test_comparison_includes_legacy_node(self, spreadsheet, optimized, legacy):
        rows = spreadsheet.compare_architectures([optimized, legacy])
        assert {row["architecture"] for row in rows} == {
            "baseline",
            "optimized",
            "legacy-tpms",
        }

    def test_dominant_block_is_reported(self, spreadsheet, optimized):
        rows = spreadsheet.compare_architectures([optimized])
        assert all(isinstance(row["dominant_block"], str) for row in rows)
