"""Tests for the long-window node emulator."""

from __future__ import annotations

import pytest

from repro.conditions.temperature import TyreThermalModel
from repro.core.emulator import NodeEmulator
from repro.errors import EmulationError
from repro.scavenger.electrostatic import ElectrostaticScavenger
from repro.scavenger.storage import supercapacitor
from repro.vehicle.drive_cycle import constant_cruise, urban_cycle


def make_emulator(node, database, scavenger, storage, **kwargs):
    return NodeEmulator(node, database, scavenger, storage, **kwargs)


class TestSteadyStateCruise:
    def test_surplus_cruise_keeps_node_active(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(constant_cruise(100.0, duration_s=120.0))
        assert result.moving_active_fraction == pytest.approx(1.0)
        assert result.brownout_events == 0

    def test_surplus_cruise_accumulates_energy(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(constant_cruise(120.0, duration_s=120.0))
        assert result.harvested_j > result.consumed_j

    def test_deficit_cruise_eventually_browns_out(self, node, database, scavenger):
        storage = supercapacitor(capacity_j=0.05, initial_fraction=0.3)
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(constant_cruise(20.0, duration_s=600.0))
        assert result.brownout_events >= 1
        assert result.moving_active_fraction < 1.0

    def test_revolution_count_matches_kinematics(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        duration = 60.0
        result = emulator.emulate(constant_cruise(90.0, duration_s=duration))
        expected = duration * node.wheel.revolutions_per_second(90.0)
        assert result.revolutions == pytest.approx(expected, abs=2)

    def test_standstill_cycle_harvests_nothing(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(constant_cruise(0.0, duration_s=60.0))
        assert result.harvested_j == 0.0
        assert result.revolutions == 0
        assert result.consumed_j > 0.0  # sleep floor still drains the storage

    def test_summary_keys(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        summary = emulator.emulate(constant_cruise(80.0, duration_s=30.0)).summary()
        assert {"harvested_mj", "consumed_mj", "revolutions", "brownout_events"} <= set(
            summary
        )


class TestSamplesAndState:
    def test_samples_are_recorded_at_the_requested_interval(
        self, node, database, scavenger, storage
    ):
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(constant_cruise(80.0, duration_s=30.0), record_interval_s=1.0)
        assert 29 <= len(result.samples) <= 32

    def test_sample_arrays_are_parallel(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        arrays = emulator.emulate(constant_cruise(80.0, duration_s=20.0)).sample_arrays()
        lengths = {len(values) for values in arrays.values()}
        assert len(lengths) == 1

    def test_state_of_charge_stays_in_bounds(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        arrays = emulator.emulate(urban_cycle(repetitions=1)).sample_arrays()
        soc = arrays["state_of_charge"]
        assert soc.min() >= 0.0
        assert soc.max() <= 1.0

    def test_record_interval_must_be_positive(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        with pytest.raises(EmulationError):
            emulator.emulate(constant_cruise(80.0), record_interval_s=0.0)

    def test_storage_is_reset_between_runs(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        first = emulator.emulate(constant_cruise(120.0, duration_s=60.0))
        second = emulator.emulate(constant_cruise(120.0, duration_s=60.0))
        assert first.harvested_j == pytest.approx(second.harvested_j)
        assert first.consumed_j == pytest.approx(second.consumed_j)


class TestThermalCoupling:
    def test_thermal_model_increases_consumption(self, node, database, scavenger):
        cycle = constant_cruise(130.0, duration_s=900.0)
        cold = make_emulator(node, database, scavenger, supercapacitor())
        hot = make_emulator(
            node,
            database,
            scavenger,
            supercapacitor(),
            thermal_model=TyreThermalModel(ambient_celsius=35.0, time_constant_s=120.0),
        )
        cold_result = cold.emulate(cycle)
        hot_result = hot.emulate(cycle)
        assert hot_result.consumed_j > cold_result.consumed_j

    def test_temperature_is_recorded(self, node, database, scavenger, storage):
        emulator = make_emulator(
            node, database, scavenger, storage,
            thermal_model=TyreThermalModel(time_constant_s=60.0),
        )
        arrays = emulator.emulate(constant_cruise(120.0, duration_s=300.0)).sample_arrays()
        assert arrays["temperature_c"][-1] > arrays["temperature_c"][0]


class TestInstantPowerTrace:
    def test_trace_window_is_respected(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(
            constant_cruise(80.0, duration_s=30.0), trace_window=(10.0, 11.0)
        )
        assert result.trace is not None
        assert result.trace.start_s >= 10.0 - 1e-6
        assert result.trace.end_s <= 11.0 + 1e-6

    def test_trace_shows_burst_structure(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(
            constant_cruise(80.0, duration_s=10.0), trace_window=(2.0, 3.0)
        )
        trace = result.trace
        assert trace.peak_to_average_ratio() > 3.0
        labels = {label for _, _, _, label in trace.segments()}
        assert {"acquire", "compute", "transmit"} <= labels

    def test_no_trace_without_window(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        assert emulator.emulate(constant_cruise(80.0, duration_s=5.0)).trace is None

    def test_invalid_trace_window_rejected(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        with pytest.raises(EmulationError):
            emulator.emulate(constant_cruise(80.0), trace_window=(5.0, 2.0))


class TestSteadyStateTraceHelper:
    def test_window_duration(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        trace = emulator.steady_state_trace(60.0, window_s=0.5)
        assert trace.duration_s == pytest.approx(0.5, abs=0.01)

    def test_periodicity_matches_wheel_round(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        trace = emulator.steady_state_trace(60.0, window_s=1.0)
        transmit_segments = [
            start for start, _, _, label in trace.segments() if label == "transmit"
        ]
        period = node.wheel.revolution_period_s(60.0)
        assert len(transmit_segments) >= 2
        assert transmit_segments[1] - transmit_segments[0] == pytest.approx(period, rel=0.01)

    def test_energy_matches_evaluator(self, node, database, scavenger, storage, point):
        """Integrating the instant-power trace reproduces the evaluator's
        average energy (cross-check between Fig. 2 and Fig. 3 machinery)."""
        from repro.core.evaluator import EnergyEvaluator

        emulator = make_emulator(node, database, scavenger, storage)
        period = node.wheel.revolution_period_s(60.0)
        trace = emulator.steady_state_trace(60.0, window_s=8 * period)
        per_revolution = trace.energy_j() / 8.0
        expected = EnergyEvaluator(node, database).energy_per_revolution_j(point)
        assert per_revolution == pytest.approx(expected, rel=0.05)

    def test_requires_positive_speed_and_window(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        with pytest.raises(EmulationError):
            emulator.steady_state_trace(0.0, window_s=1.0)
        with pytest.raises(EmulationError):
            emulator.steady_state_trace(60.0, window_s=0.0)


class TestUrbanCycle:
    def test_weak_scavenger_gives_poor_coverage(self, node, database):
        storage = supercapacitor(capacity_j=0.05, initial_fraction=0.2)
        emulator = make_emulator(node, database, ElectrostaticScavenger(), storage)
        result = emulator.emulate(urban_cycle(repetitions=2))
        assert result.moving_active_fraction < 0.9

    def test_energy_bookkeeping_is_consistent(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(urban_cycle(repetitions=1))
        # Energy flows are all non-negative and the net equals the difference.
        assert result.harvested_j >= 0.0
        assert result.consumed_j >= 0.0
        assert result.discarded_j >= 0.0
        assert result.net_energy_j == pytest.approx(
            result.harvested_j - result.consumed_j
        )

    def test_active_revolutions_never_exceed_total(self, node, database, scavenger, storage):
        emulator = make_emulator(node, database, scavenger, storage)
        result = emulator.emulate(urban_cycle(repetitions=1))
        assert result.active_revolutions <= result.revolutions
