"""Regression tests: emulator cache reuse and the columnar sample log.

The emulator keeps its revolution-energy and standstill-power caches warm
across ``emulate()`` runs (the evaluator and database are fixed per
instance).  Reusing cached values must not change any ``EmulationResult``
totals, and the columnar :class:`SampleLog` must behave exactly like the old
list-of-dataclasses sample storage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.conditions.temperature import TyreThermalModel
from repro.core.emulator import EmulationResult, EmulationSample, NodeEmulator, SampleLog
from repro.scavenger.storage import supercapacitor
from repro.vehicle.drive_cycle import constant_cruise, urban_cycle


def result_totals(result: EmulationResult) -> dict[str, float]:
    return {
        "harvested_j": result.harvested_j,
        "consumed_j": result.consumed_j,
        "discarded_j": result.discarded_j,
        "revolutions": result.revolutions,
        "active_revolutions": result.active_revolutions,
        "brownout_events": result.brownout_events,
        "moving_time_s": result.moving_time_s,
        "active_time_s": result.active_time_s,
    }


class TestCacheReuse:
    def test_warm_cache_reproduces_cold_cache_totals(self, node, database, scavenger):
        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        cycle = urban_cycle(repetitions=1)
        cold = emulator.emulate(cycle)
        assert len(emulator._energy_cache) > 0
        warm = emulator.emulate(cycle)  # same instance: every lookup cache-hits
        assert result_totals(warm) == pytest.approx(result_totals(cold))
        for key, column in cold.sample_arrays().items():
            assert np.array_equal(column, warm.sample_arrays()[key]), key

    def test_cache_persists_across_runs(self, node, database, scavenger):
        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        emulator.emulate(constant_cruise(80.0, duration_s=30.0))
        entries_after_first = len(emulator._energy_cache)
        assert entries_after_first > 0
        emulator.emulate(constant_cruise(80.0, duration_s=30.0))
        assert len(emulator._energy_cache) == entries_after_first

    def test_warm_emulator_matches_fresh_emulator(self, node, database, scavenger):
        cycle = constant_cruise(70.0, duration_s=60.0)
        warm = NodeEmulator(node, database, scavenger, supercapacitor())
        warm.emulate(constant_cruise(110.0, duration_s=30.0))  # populate caches
        fresh = NodeEmulator(node, database, scavenger, supercapacitor())
        assert result_totals(warm.emulate(cycle)) == pytest.approx(
            result_totals(fresh.emulate(cycle))
        )

    def test_in_place_database_mutation_invalidates_caches(
        self, node, database, scavenger
    ):
        cycle = constant_cruise(70.0, duration_s=60.0)
        warm = NodeEmulator(node, database, scavenger, supercapacitor())
        warm.emulate(cycle)  # populate caches from the original database
        entry = warm.evaluator.database.entry("rf_tx", "active")
        warm.evaluator.database.remove("rf_tx", "active")
        warm.evaluator.database.add(entry.scaled(dynamic_factor=100.0))
        mutated = warm.emulate(cycle)
        fresh = NodeEmulator(node, warm.evaluator.database, scavenger, supercapacitor())
        assert mutated.consumed_j == pytest.approx(fresh.emulate(cycle).consumed_j)

    def test_base_point_reassignment_invalidates_caches(
        self, node, database, scavenger
    ):
        from repro.conditions.operating_point import OperatingPoint
        from repro.conditions.supply import SupplyCondition, SupplyRail

        cycle = constant_cruise(70.0, duration_s=60.0)
        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        emulator.emulate(cycle)
        low_rail = SupplyRail(name="vdd_core", nominal_v=1.0, tolerance=0.0)
        low_point = OperatingPoint(supply=SupplyCondition(rail=low_rail))
        emulator.base_point = low_point
        warm = emulator.emulate(cycle)
        fresh = NodeEmulator(
            node, database, scavenger, supercapacitor(), base_point=low_point
        ).emulate(cycle)
        assert warm.consumed_j == pytest.approx(fresh.consumed_j)

    def test_feasibility_boundary_round_falls_back_to_exact_speed(
        self, node, database, scavenger, monkeypatch
    ):
        """A round feasible at its exact speed but not at the bin-center speed
        must still emulate, keyed on the exact speed."""
        from repro.blocks.node import SensorNode
        from repro.errors import ScheduleError
        from repro.timing.wheel_round import WheelRound

        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        original = SensorNode.schedule_for

        def limited(self, speed_kmh, revolution_index=0):
            if speed_kmh >= 180.0:
                raise ScheduleError("busy phases exceed the wheel-round period")
            return original(self, speed_kmh, revolution_index)

        monkeypatch.setattr(SensorNode, "schedule_for", limited)
        speed = 179.9  # feasible, but its bin center (180.0) is not
        unit = WheelRound(
            index=0,
            start_s=0.0,
            period_s=node.wheel.revolution_period_s(speed),
            speed_kmh=speed,
        )
        energy, phases = emulator._revolution_energy(unit, 25.0)
        assert energy > 0.0 and phases
        assert any(key[0] == ("exact", speed) for key in emulator._energy_cache)
        # The boundary (bin, pattern) is classified once as exact-keyed so
        # later rounds in the same bin skip the doomed schedule build.
        assert any(key[0] == round(speed / 0.5) for key in emulator._exact_speed_keys)
        again, _ = emulator._revolution_energy(unit, 25.0)
        assert again == energy

    def test_cached_bin_does_not_mask_faster_infeasible_speed(
        self, node, database, scavenger, monkeypatch
    ):
        """A bin entry seeded by a feasible speed must not suppress the
        ScheduleError for a later, faster, infeasible speed in the same bin."""
        from repro.blocks.node import SensorNode
        from repro.errors import ScheduleError
        from repro.timing.wheel_round import WheelRound

        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        original = SensorNode.schedule_for

        def limited(self, speed_kmh, revolution_index=0):
            if speed_kmh >= 180.1:
                raise ScheduleError("busy phases exceed the wheel-round period")
            return original(self, speed_kmh, revolution_index)

        monkeypatch.setattr(SensorNode, "schedule_for", limited)

        def round_at(speed):
            return WheelRound(
                index=0,
                start_s=0.0,
                period_s=node.wheel.revolution_period_s(speed),
                speed_kmh=speed,
            )

        # 179.9 and 180.2 share bin 360 (center 180.0, feasible).
        emulator._revolution_energy(round_at(179.9), 25.0)  # seeds the bin
        with pytest.raises(ScheduleError):
            emulator._revolution_energy(round_at(180.2), 25.0)

    def test_infeasible_exact_speed_still_raises(
        self, node, database, scavenger, monkeypatch
    ):
        """A feasible bin center must not mask an infeasible actual speed."""
        from repro.blocks.node import SensorNode
        from repro.errors import ScheduleError
        from repro.timing.wheel_round import WheelRound

        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        original = SensorNode.schedule_for

        def limited(self, speed_kmh, revolution_index=0):
            if speed_kmh > 180.0:
                raise ScheduleError("busy phases exceed the wheel-round period")
            return original(self, speed_kmh, revolution_index)

        monkeypatch.setattr(SensorNode, "schedule_for", limited)
        speed = 180.1  # infeasible, but its bin center (180.0) is feasible
        unit = WheelRound(
            index=0,
            start_s=0.0,
            period_s=node.wheel.revolution_period_s(speed),
            speed_kmh=speed,
        )
        with pytest.raises(ScheduleError):
            emulator._revolution_energy(unit, 25.0)

    def test_bin_sharing_speeds_do_not_leak_history(self, node, database, scavenger):
        """Two speeds in the same 0.5 km/h bin must not cross-contaminate runs.

        80.24 and 80.49 km/h share a quantization bin; a warm emulator that
        saw 80.24 first must report the same totals for an 80.49 cycle as a
        fresh emulator, because cached energies are evaluated at the
        bin-representative speed, not at the first speed seen.
        """
        cycle = constant_cruise(80.49, duration_s=60.0)
        warm = NodeEmulator(node, database, scavenger, supercapacitor())
        warm.emulate(constant_cruise(80.24, duration_s=60.0))
        fresh = NodeEmulator(node, database, scavenger, supercapacitor())
        assert result_totals(warm.emulate(cycle)) == pytest.approx(
            result_totals(fresh.emulate(cycle))
        )

    def test_thermal_warm_emulator_matches_fresh_emulator(
        self, node, database, scavenger
    ):
        """Standstill memoization must not make emulate() history-dependent.

        The warm emulator seeds its temperature bins while running a hotter
        cycle; re-running the reference cycle must still match a fresh
        emulator exactly because bins are evaluated at their representative
        temperature, not at the first temperature seen.
        """
        cycle = constant_cruise(90.0, duration_s=120.0)
        warm = NodeEmulator(
            node, database, scavenger, supercapacitor(),
            thermal_model=TyreThermalModel(time_constant_s=60.0),
        )
        warm.emulate(constant_cruise(130.0, duration_s=300.0))
        fresh = NodeEmulator(
            node, database, scavenger, supercapacitor(),
            thermal_model=TyreThermalModel(time_constant_s=60.0),
        )
        assert result_totals(warm.emulate(cycle)) == pytest.approx(
            result_totals(fresh.emulate(cycle))
        )

    def test_node_and_evaluator_reassignment_invalidates_caches(
        self, node, optimized, database, scavenger
    ):
        from repro.core.evaluator import EnergyEvaluator

        cycle = constant_cruise(70.0, duration_s=60.0)
        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        emulator.emulate(cycle)
        emulator.node = optimized
        emulator.evaluator = EnergyEvaluator(optimized, database)
        warm = emulator.emulate(cycle)
        fresh = NodeEmulator(optimized, database, scavenger, supercapacitor()).emulate(cycle)
        assert warm.consumed_j == pytest.approx(fresh.consumed_j)

    def test_standstill_power_is_memoized_per_temperature_quantum(
        self, node, database, scavenger
    ):
        emulator = NodeEmulator(
            node,
            database,
            scavenger,
            supercapacitor(),
            thermal_model=TyreThermalModel(time_constant_s=60.0),
        )
        emulator.emulate(constant_cruise(120.0, duration_s=120.0))
        assert len(emulator._standstill_cache) >= 1
        # Far fewer cache entries than wheel rounds: the memoization works.
        assert len(emulator._standstill_cache) < 50


class TestSampleLog:
    def test_append_and_grow(self):
        log = SampleLog(capacity=2)
        for i in range(100):
            log.append(float(i), 50.0, 25.0, 0.5, i % 2 == 0)
        assert len(log) == 100
        arrays = log.arrays()
        assert arrays["time_s"].shape == (100,)
        assert arrays["time_s"][99] == 99.0
        assert bool(arrays["node_active"][0]) is True
        assert bool(arrays["node_active"][1]) is False

    def test_arrays_are_views_not_copies(self):
        log = SampleLog()
        log.append(0.0, 10.0, 20.0, 0.9, True)
        arrays = log.arrays()
        assert arrays["speed_kmh"].base is not None

    def test_roundtrip_through_samples(self):
        samples = [
            EmulationSample(
                time_s=float(i),
                speed_kmh=30.0 + i,
                temperature_c=25.0,
                state_of_charge=0.1 * i,
                node_active=bool(i % 2),
            )
            for i in range(5)
        ]
        log = SampleLog.from_samples(samples)
        assert log.to_samples() == samples

    def test_result_samples_property_roundtrip(self):
        result = EmulationResult(node_name="n", cycle_name="c", duration_s=3.0)
        result.log.append(0.0, 50.0, 25.0, 0.5, True)
        assert result.sample_count == 1
        rows = result.samples
        assert rows[0].speed_kmh == 50.0
        result.samples = []
        assert result.sample_count == 0

    def test_constructor_accepts_sample_list(self):
        sample = EmulationSample(
            time_s=0.0,
            speed_kmh=50.0,
            temperature_c=25.0,
            state_of_charge=0.5,
            node_active=True,
        )
        result = EmulationResult(
            node_name="n", cycle_name="c", duration_s=1.0, samples=[sample]
        )
        assert result.samples == (sample,)

    def test_in_place_mutation_fails_loudly(self):
        """The compat view is a tuple: appending to it must not silently no-op."""
        result = EmulationResult(node_name="n", cycle_name="c", duration_s=1.0)
        with pytest.raises(AttributeError):
            result.samples.append("nope")
