"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.UnknownBlockError,
    errors.UnknownModeError,
    errors.CharacterizationError,
    errors.ScheduleError,
    errors.EmulationError,
    errors.AnalysisError,
    errors.OptimizationError,
    errors.ExportError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_every_error_derives_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_errors_are_catchable_as_base(error_type):
    with pytest.raises(errors.ReproError):
        raise error_type("boom")


def test_repro_error_is_an_exception():
    assert issubclass(errors.ReproError, Exception)


def test_error_message_is_preserved():
    try:
        raise errors.AnalysisError("specific message")
    except errors.ReproError as caught:
        assert "specific message" in str(caught)
