"""Backend equivalence: numpy is bit-identical, float32 is close by policy.

The promotion gate of the seam: the default numpy backend must be
indistinguishable — byte for byte — from not having a backend at all, and
every alternative backend must reproduce the reference within its declared
tolerance.  These tests run the three hot kernels (schedule-energy batch,
storage ledger scan, bin-union sweep) under explicit backend selections and
compare against the default path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, resolve_backend
from repro.conditions.temperature import TyreThermalModel
from repro.core.emulator import NodeEmulator
from repro.core.evaluator import EnergyEvaluator
from repro.scavenger.storage import supercapacitor, trajectory
from repro.scenario.montecarlo import MonteCarloConfig
from repro.scenario.spec import ScenarioSpec
from repro.vehicle.drive_cycle import urban_cycle

#: Pinned reduced-precision tolerance of the float32 policy (relative, on
#: energies).  The benchmark matrix gates on the same number.
FLOAT32_RTOL = 5e-4


def _sweep_inputs(node, samples: int = 300):
    spec = ScenarioSpec(name="backend-equivalence")
    config = MonteCarloConfig(samples=samples, seed=3)
    draws = config.draw(node, spec.operating_point(), config.rng_for(spec.to_json()))
    return draws.conditions, draws.patterns


def _ledger_inputs(steps: int = 5000):
    rng = np.random.default_rng(17)
    harvest = rng.uniform(0.0, 2e-4, steps)
    load = rng.uniform(0.0, 2.5e-4, steps)
    leak = np.full(steps, 0.05)
    return harvest, load, leak


class TestNumpyBackendIsBitIdentical:
    def test_schedule_sweep_bytes(self, node, database):
        conditions, patterns = _sweep_inputs(node)
        default = EnergyEvaluator(node, database)
        explicit = EnergyEvaluator(node, database, backend="numpy")
        ours = explicit.schedule_energy_sweep(conditions, patterns)
        theirs = default.schedule_energy_sweep(conditions, patterns)
        assert ours.tobytes() == theirs.tobytes()

    def test_trajectory_bytes(self, storage):
        harvest, load, leak = _ledger_inputs()
        default = trajectory(storage, harvest, load, leak)
        explicit = trajectory(storage, harvest, load, leak, backend="numpy")
        assert explicit.charge_j.tobytes() == default.charge_j.tobytes()
        assert explicit.banked_j.tobytes() == default.banked_j.tobytes()
        assert explicit.drawn_j.tobytes() == default.drawn_j.tobytes()
        assert (explicit.active == default.active).all()
        assert explicit.final_charge_j == default.final_charge_j
        assert explicit.brownout_events == default.brownout_events

    def test_environment_selection_of_numpy_is_equally_identical(
        self, node, database, monkeypatch
    ):
        conditions, patterns = _sweep_inputs(node, samples=64)
        reference = EnergyEvaluator(node, database).schedule_energy_sweep(
            conditions, patterns
        )
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "numpy")
        via_env = EnergyEvaluator(node, database).schedule_energy_sweep(
            conditions, patterns
        )
        assert via_env.tobytes() == reference.tobytes()

    def test_emulation_is_byte_identical(self, node, database, scavenger):
        cycle = urban_cycle(repetitions=1)

        def run(backend):
            evaluator = EnergyEvaluator(node, database, backend=backend)
            emulator = NodeEmulator(
                node,
                database,
                scavenger,
                supercapacitor(initial_fraction=0.3),
                thermal_model=TyreThermalModel(time_constant_s=120.0),
                evaluator=evaluator,
            )
            return emulator.emulate(cycle, prefill=True)

        ours, theirs = run("numpy").sample_arrays(), run(None).sample_arrays()
        for key in ours:
            assert ours[key].tobytes() == theirs[key].tobytes(), key


class TestFloat32Policy:
    def test_schedule_sweep_dtype_and_closeness(self, node, database):
        conditions, patterns = _sweep_inputs(node)
        reference = EnergyEvaluator(node, database).schedule_energy_sweep(
            conditions, patterns
        )
        float32 = EnergyEvaluator(
            node, database, backend="float32"
        ).schedule_energy_sweep(conditions, patterns)
        assert float32.dtype == np.float32
        np.testing.assert_allclose(float32, reference, rtol=FLOAT32_RTOL)

    def test_trajectory_dtype_and_absolute_closeness(self, storage):
        harvest, load, leak = _ledger_inputs()
        reference = trajectory(storage, harvest, load, leak)
        float32 = trajectory(storage, harvest, load, leak, backend="float32")
        assert float32.charge_j.dtype == np.float32
        # The ledger is a long recurrence with thresholds: the policy's pin
        # is absolute (a fraction of capacity), not relative — near-empty
        # steps make relative error meaningless.
        atol = 0.02 * storage.capacity_j
        np.testing.assert_allclose(
            float32.charge_j, reference.charge_j, rtol=0.0, atol=atol
        )
        assert abs(float32.final_charge_j - reference.final_charge_j) <= atol

    def test_bin_union_closeness(self, node, database, scavenger):
        cycle = urban_cycle(repetitions=1)

        def bins(backend):
            evaluator = EnergyEvaluator(node, database, backend=backend)
            emulator = NodeEmulator(
                node,
                database,
                scavenger,
                supercapacitor(initial_fraction=0.3),
                thermal_model=TyreThermalModel(time_constant_s=120.0),
                evaluator=evaluator,
            )
            pending = emulator._pending_energy_bins(cycle, idle_step_s=1.0)
            assert pending
            evaluated = emulator.evaluate_energy_bins(pending)
            return np.array(
                [evaluated[key][0] for key in sorted(evaluated, key=repr)]
            )

        np.testing.assert_allclose(bins("float32"), bins(None), rtol=FLOAT32_RTOL)


NUMBA_AVAILABLE = "numba" in available_backends()


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba is not installed")
class TestNumbaBackend:
    """Runs only where numba wheels exist (the CI backend-matrix leg)."""

    def test_schedule_sweep_within_1e9(self, node, database):
        conditions, patterns = _sweep_inputs(node)
        reference = EnergyEvaluator(node, database).schedule_energy_sweep(
            conditions, patterns
        )
        numba = EnergyEvaluator(
            node, database, backend="numba"
        ).schedule_energy_sweep(conditions, patterns)
        np.testing.assert_allclose(numba, reference, rtol=1e-9)

    def test_trajectory_is_bitwise(self, storage):
        harvest, load, leak = _ledger_inputs()
        reference = trajectory(storage, harvest, load, leak)
        numba = trajectory(storage, harvest, load, leak, backend="numba")
        assert numba.charge_j.tobytes() == reference.charge_j.tobytes()
        assert numba.brownout_events == reference.brownout_events
        assert numba.final_charge_j == reference.final_charge_j


class TestSelectionDoesNotLeakIntoResults:
    def test_evaluator_group_key_is_backend_free(self, node, database):
        spec = ScenarioSpec(name="backend-free")
        key = spec.evaluator_group_key()
        assert "numpy" not in key
        assert "float32" not in key
        assert "backend" not in key

    def test_backend_attribute_is_resolved(self, node, database):
        evaluator = EnergyEvaluator(node, database, backend="float32")
        assert evaluator.backend is resolve_backend("float32")
        assert EnergyEvaluator(node, database).backend is resolve_backend("numpy")
