"""The float32 precision policy: allowed where stats are the product, refused
where joules are.

Satellite contract of the backend seam: a throughput-bound fleet run may
trade per-joule precision for bandwidth — its product is survival
statistics — and must stay within a pinned tolerance of the float64 run.
The per-joule study kinds (``balance``, ``report``) ARE joule figures, so a
reduced-precision ambient backend is refused with a one-line
``ConfigError`` instead of silently degrading the reported numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import ARRAY_BACKEND_ENV
from repro.errors import ConfigError
from repro.fleet import FleetRunner, FleetSpec
from repro.scenario.spec import ScenarioSpec
from repro.scenario.study import Study

#: Pinned fleet-statistics tolerances of the float32 policy.
SURVIVAL_ATOL = 0.02  # absolute, on the [0, 1] survival fractions
RATE_RTOL = 0.05  # relative, on per-hour/percentage aggregates


def _fleet(vehicles: int = 8, seed: int = 9) -> FleetSpec:
    base = ScenarioSpec(
        name="float32-policy",
        drive_cycle={"name": "urban", "params": {"repetitions": 1}},
    )
    return FleetSpec.from_base(base, vehicles=vehicles, seed=seed, chunk_vehicles=4)


class TestFleetUnderFloat32:
    def test_survival_statistics_within_pinned_tolerance(self):
        reference = FleetRunner(_fleet()).run()
        float32 = FleetRunner(_fleet(), array_backend="float32").run()

        assert float32.metadata["array_backend"] == "float32"
        assert reference.metadata["array_backend"] == "numpy"
        assert len(float32) == len(reference)

        ours = np.array([row["surviving_pct"] for row in float32.survival])
        theirs = np.array([row["surviving_pct"] for row in reference.survival])
        np.testing.assert_allclose(
            ours, theirs, rtol=0.0, atol=100.0 * SURVIVAL_ATOL
        )

        for key, value in reference.summary.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            np.testing.assert_allclose(
                float32.summary[key],
                value,
                rtol=RATE_RTOL,
                atol=SURVIVAL_ATOL,
                err_msg=f"summary[{key!r}]",
            )

    def test_vehicle_identity_is_backend_free(self):
        """Same population either way: backend never reaches the digests."""
        reference = FleetRunner(_fleet())
        float32 = FleetRunner(_fleet(), array_backend="float32")
        assert reference.checkpoint_key() == float32.checkpoint_key()
        assert (
            reference.fleet.document_digest() == float32.fleet.document_digest()
        )


class TestPerJouleRefusal:
    @pytest.mark.parametrize("kind", ["balance", "report"])
    def test_refused_under_ambient_float32(self, kind, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        study = Study(ScenarioSpec(name="refused"))
        with pytest.raises(ConfigError, match="per-joule") as excinfo:
            study.run(kind)
        # One-line refusal: the CLI prints `error: <message>` verbatim.
        assert "\n" not in str(excinfo.value)
        assert "float32" in str(excinfo.value)

    @pytest.mark.parametrize("kind", ["balance", "report"])
    def test_allowed_under_default_backend(self, kind, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV, raising=False)
        result = Study(ScenarioSpec(name="allowed")).run(kind)
        assert len(result.rows) == 1

    def test_emulate_kind_is_not_refused(self, monkeypatch):
        """Emulation products are trajectories/statistics, not joule tables."""
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        spec = ScenarioSpec(
            name="emulate-ok",
            drive_cycle={"name": "urban", "params": {"repetitions": 1}},
        )
        result = Study(spec).run("emulate")
        assert len(result.rows) == 1
