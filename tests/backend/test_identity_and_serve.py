"""Row-identity contract and the serve/stamp surfaces of the backend seam.

Backend selection is an execution policy: store keys, digests, checkpoint
run keys and deterministic result documents must be byte-identical across
backends, while the *observability* surfaces (``/healthz`` stats, the
benchmark/run-package environment stamp) must say which backend ran.
"""

from __future__ import annotations

import importlib.util

import pytest

from repro.backend import ARRAY_BACKEND_ENV, active_backend_info
from repro.cli import main
from repro.fleet import FleetRunner, FleetSpec
from repro.runpkg import environment_stamp
from repro.scenario.spec import ScenarioSpec
from repro.serve.jobs import JobManager, fleet_result_document

NUMBA_INSTALLED = importlib.util.find_spec("numba") is not None


def _fleet(vehicles: int = 6, seed: int = 4) -> FleetSpec:
    base = ScenarioSpec(
        name="identity",
        drive_cycle={"name": "urban", "params": {"repetitions": 1}},
    )
    return FleetSpec.from_base(base, vehicles=vehicles, seed=seed, chunk_vehicles=3)


class TestRowIdentity:
    def test_checkpoint_key_ignores_backend(self):
        default = FleetRunner(_fleet()).checkpoint_key()
        float32 = FleetRunner(_fleet(), array_backend="float32").checkpoint_key()
        assert default == float32
        assert "array_backend" not in repr(default)

    def test_spec_documents_carry_no_backend(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        spec = ScenarioSpec(name="identity")
        assert "backend" not in spec.to_json()
        assert "float32" not in spec.to_json()
        fleet = _fleet()
        assert "array_backend" not in fleet.to_json()

    def test_fleet_document_digest_ignores_backend(self, monkeypatch):
        reference = _fleet().document_digest()
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        assert _fleet().document_digest() == reference

    def test_fleet_result_document_drops_the_backend_tag(self):
        result = FleetRunner(_fleet(), array_backend="float32").run()
        assert result.metadata["array_backend"] == "float32"
        document = fleet_result_document(result)
        assert "array_backend" not in document["metadata"]
        # The store key is content-addressed over this document, so two
        # replicas on different backends dedupe to one entry.
        reference = fleet_result_document(FleetRunner(_fleet()).run())
        assert document["metadata"] == reference["metadata"]


class TestServeStats:
    def test_healthz_stats_report_the_active_backend(self):
        manager = JobManager(evaluator_capacity=2)
        try:
            stats = manager.stats()
        finally:
            manager.shutdown()
        assert stats["array_backend"]["name"] == "numpy"
        assert stats["array_backend"]["precision"] == "float64"
        cache = stats["evaluator_cache"]
        assert cache["build_wall_time_s"] == 0.0
        assert cache["last_build_wall_time_s"] == 0.0

    def test_stats_follow_the_environment(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        manager = JobManager(evaluator_capacity=2)
        try:
            stats = manager.stats()
        finally:
            manager.shutdown()
        assert stats["array_backend"]["name"] == "float32"


class TestEnvironmentStamp:
    def test_stamp_names_the_backend(self, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV, raising=False)
        stamp = environment_stamp()
        assert stamp["array_backend"] == "numpy"
        assert ("numba" in stamp) == NUMBA_INSTALLED

    def test_stamp_follows_the_environment(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        assert environment_stamp()["array_backend"] == "float32"

    def test_stamp_matches_active_backend_info(self):
        stamp = environment_stamp()
        info = active_backend_info()
        assert stamp["array_backend"] == info["name"]
        assert stamp.get("numba") == info.get("numba")


class TestCliSelection:
    def test_unknown_backend_fails_with_one_line_error(self, capsys, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV, raising=False)
        assert main(["--array-backend", "bogus", "architectures"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "unknown array backend" in err

    def test_selection_reaches_the_environment(self, capsys, monkeypatch):
        # setenv (not delenv): the CLI writes the variable itself, so the
        # monkeypatch must own the key for teardown to restore it.
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "")
        assert main(["--array-backend", "float32", "architectures"]) == 0
        import os

        assert os.environ[ARRAY_BACKEND_ENV] == "float32"

    @pytest.mark.skipif(NUMBA_INSTALLED, reason="numba is installed here")
    def test_numba_without_wheels_is_an_actionable_error(self, capsys, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV, raising=False)
        assert main(["--array-backend", "numba", "architectures"]) == 1
        assert "requires the numba package" in capsys.readouterr().err

    def test_per_joule_refusal_surfaces_as_cli_error(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "")
        scenario = tmp_path / "scenario.json"
        scenario.write_text(ScenarioSpec(name="cli-refusal").to_json())
        code = main(
            [
                "--array-backend",
                "float32",
                "run",
                "--scenario",
                str(scenario),
                "--kind",
                "balance",
            ]
        )
        assert code == 1
        assert "per-joule" in capsys.readouterr().err
