"""Array-backend registry and selection: precedence, guards, memoization."""

from __future__ import annotations

import importlib.util

import pytest

from repro.backend import (
    ARRAY_BACKEND_ENV,
    ARRAY_BACKENDS,
    ArrayBackend,
    NumpyBackend,
    active_backend_info,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.backend.numba_backend import numba_available, numba_version
from repro.errors import ConfigError

NUMBA_INSTALLED = importlib.util.find_spec("numba") is not None


class TestRegistry:
    def test_built_in_names(self):
        assert set(ARRAY_BACKENDS.names()) >= {"numpy", "float32", "numba"}

    def test_available_backends_always_include_the_reference(self):
        names = available_backends()
        assert "numpy" in names
        assert "float32" in names

    def test_numba_listed_only_when_installed(self):
        assert ("numba" in available_backends()) == NUMBA_INSTALLED
        assert numba_available() == NUMBA_INSTALLED

    def test_register_backend_is_the_registry_front_door(self):
        class Custom(NumpyBackend):
            name = "custom-for-test"

        register_backend("custom-for-test", Custom)
        try:
            assert resolve_backend("custom-for-test").name == "custom-for-test"
        finally:
            ARRAY_BACKENDS.unregister("custom-for-test")
            from repro.backend import _INSTANCES

            _INSTANCES.pop("custom-for-test", None)


class TestResolvePrecedence:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_environment_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        assert resolve_backend(None).name == "float32"

    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        assert resolve_backend("numpy").name == "numpy"

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_named_resolution_is_memoized(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")
        assert resolve_backend("float32") is resolve_backend("float32")

    def test_empty_environment_value_means_default(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "")
        assert resolve_backend(None).name == "numpy"


class TestResolveErrors:
    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown array backend 'bogus'"):
            resolve_backend("bogus")

    def test_environment_sourced_failure_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "bogus")
        with pytest.raises(ConfigError, match=ARRAY_BACKEND_ENV):
            resolve_backend(None)

    def test_non_string_selection(self):
        with pytest.raises(ConfigError, match="must be a name or an ArrayBackend"):
            resolve_backend(123)

    @pytest.mark.skipif(NUMBA_INSTALLED, reason="numba is installed here")
    def test_numba_without_the_package_is_a_one_line_config_error(self):
        with pytest.raises(ConfigError, match="requires the numba package"):
            resolve_backend("numba")


class TestActiveBackendInfo:
    def test_reports_name_and_precision(self, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV, raising=False)
        info = active_backend_info()
        assert info["name"] == "numpy"
        assert info["precision"] == "float64"

    def test_follows_the_environment(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "float32")
        info = active_backend_info()
        assert info["name"] == "float32"
        assert info["precision"] == "float32"

    def test_numba_version_mirrors_installation(self):
        info = active_backend_info()
        assert ("numba" in info) == NUMBA_INSTALLED
        if NUMBA_INSTALLED:
            assert info["numba"] == numba_version()


class TestBackendShape:
    @pytest.mark.parametrize("name", ["numpy", "float32"])
    def test_describe_names_backend_and_precision(self, name):
        backend = resolve_backend(name)
        described = backend.describe()
        assert name in described
        assert backend.precision in described
        assert isinstance(backend, ArrayBackend)
