"""Tests for the declarative ScenarioSpec (construction, dict/JSON round trips)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.node import SensorNode
from repro.errors import ConfigError
from repro.power.database import PowerDatabase
from repro.scavenger.base import EnergyScavenger
from repro.scavenger.storage import StorageElement
from repro.scenario.spec import ComponentRef, ScenarioSpec, load_scenario
from repro.vehicle.drive_cycle import DriveCycle


class TestComponentRef:
    def test_coerce_from_string(self):
        ref = ComponentRef.coerce("baseline", "architecture")
        assert ref == ComponentRef("baseline")

    def test_coerce_from_mapping_with_params(self):
        ref = ComponentRef.coerce({"name": "urban", "params": {"repetitions": 2}}, "drive_cycle")
        assert ref.name == "urban"
        assert dict(ref.params) == {"repetitions": 2}

    def test_params_order_is_normalized(self):
        a = ComponentRef("x", params=(("b", 2), ("a", 1)))
        b = ComponentRef("x", params=(("a", 1), ("b", 2)))
        assert a == b
        assert hash(a) == hash(b)

    def test_compact_serialization(self):
        assert ComponentRef("baseline").to_dict() == "baseline"
        assert ComponentRef("urban", (("repetitions", 2),)).to_dict() == {
            "name": "urban",
            "params": {"repetitions": 2},
        }

    def test_unknown_mapping_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            ComponentRef.coerce({"name": "urban", "parms": {}}, "drive_cycle")

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigError, match="needs a 'name'"):
            ComponentRef.coerce({"params": {}}, "drive_cycle")

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigError, match="must be a component name"):
            ComponentRef.coerce(42, "architecture")


class TestConstruction:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.architecture.name == "baseline"
        assert spec.power_database.name == "reference"
        assert spec.storage is not None

    def test_kwargs_accept_bare_names(self):
        spec = ScenarioSpec(architecture="optimized", scavenger="electromagnetic")
        assert spec.architecture == ComponentRef("optimized")
        assert spec.scavenger == ComponentRef("electromagnetic")

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ConfigError, match="unknown architecture"):
            ScenarioSpec(architecture="warp-drive")

    def test_unknown_cycle_rejected(self):
        with pytest.raises(ConfigError, match="unknown drive cycle"):
            ScenarioSpec(drive_cycle="lunar")

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"scavenger_size": 0.0}, "scavenger_size"),
            ({"scavenger_size": -1.0}, "scavenger_size"),
            ({"scavenger_size": float("nan")}, "scavenger_size"),
            ({"speed_kmh": 0.0}, "speed_kmh"),
            ({"speed_kmh": float("inf")}, "speed_kmh"),
            ({"temperature_c": 1000.0}, "temperature_c"),
            ({"temperature_c": float("nan")}, "temperature_c"),
            ({"supply_corner": "nominal"}, "supply_corner"),
            ({"process_corner": "blazing"}, "process_corner"),
            ({"tx_interval_revs": 0}, "tx_interval_revs"),
            ({"tx_interval_revs": 1.5}, "tx_interval_revs"),
            ({"payload_bits": -8}, "payload_bits"),
            ({"name": ""}, "name"),
        ],
    )
    def test_invalid_values_rejected(self, kwargs, fragment):
        with pytest.raises(ConfigError, match=fragment):
            ScenarioSpec(**kwargs)


class TestDictRoundTrip:
    def test_default_round_trip(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_full_round_trip(self):
        spec = ScenarioSpec(
            name="full",
            architecture="optimized",
            power_database="low-power",
            scavenger={"name": "electromagnetic", "params": {"size_factor": 2.0}},
            scavenger_size=1.5,
            storage={"name": "supercapacitor", "params": {"capacity_j": 0.5}},
            drive_cycle={"name": "urban", "params": {"repetitions": 2}},
            temperature_c=-20.0,
            speed_kmh=90.0,
            supply_corner="min",
            process_corner="fast",
            tx_interval_revs=8,
            payload_bits=96,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = ScenarioSpec(drive_cycle="nedc", tx_interval_revs=4)
        assert ScenarioSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_minimal_document(self):
        spec = ScenarioSpec.from_dict({"architecture": "legacy-tpms"})
        assert spec.architecture.name == "legacy-tpms"
        assert spec.temperature_c == 25.0

    def test_null_storage(self):
        spec = ScenarioSpec.from_dict({"storage": None})
        assert spec.storage is None
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_top_level_field(self):
        with pytest.raises(ConfigError, match="unknown scenario field"):
            ScenarioSpec.from_dict({"archtecture": "baseline"})

    def test_unknown_environment_field(self):
        with pytest.raises(ConfigError, match="unknown environment field"):
            ScenarioSpec.from_dict({"environment": {"humidity": 0.4}})

    def test_unknown_workload_field(self):
        with pytest.raises(ConfigError, match="unknown workload field"):
            ScenarioSpec.from_dict({"workload": {"tx_power_dbm": 0}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="must be a mapping"):
            ScenarioSpec.from_dict(["architecture"])


class TestAxes:
    def test_axis_aliases(self):
        spec = ScenarioSpec()
        assert spec.with_axis("temperature", -20.0).temperature_c == -20.0
        assert spec.with_axis("speed", 90.0).speed_kmh == 90.0
        assert spec.with_axis("size", 2.0).scavenger_size == 2.0
        assert spec.with_axis("database", "low-power").power_database.name == "low-power"
        assert spec.with_axis("cycle", "nedc").drive_cycle == ComponentRef("nedc")

    def test_component_axis_coerces(self):
        spec = ScenarioSpec().with_axis("architecture", "optimized")
        assert spec.architecture == ComponentRef("optimized")

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario axis"):
            ScenarioSpec().with_axis("humidity", 0.5)

    def test_with_axes_applies_all(self):
        spec = ScenarioSpec().with_axes(temperature=85.0, architecture="optimized")
        assert spec.temperature_c == 85.0
        assert spec.architecture.name == "optimized"


class TestBuilders:
    def test_build_node(self):
        node = ScenarioSpec(architecture="optimized").build_node()
        assert isinstance(node, SensorNode)
        assert node.name == "optimized"

    def test_workload_overrides_rewire_the_radio(self):
        base = ScenarioSpec().build_node()
        node = ScenarioSpec(tx_interval_revs=16, payload_bits=64).build_node()
        assert node.radio.tx_interval_revs == 16
        assert node.radio.payload_bits == 64
        assert base.radio.tx_interval_revs == 1

    def test_build_database(self):
        database = ScenarioSpec(power_database="low-power").build_database()
        assert isinstance(database, PowerDatabase)
        assert "lp" in database.name

    def test_build_scavenger_applies_size(self):
        scavenger = ScenarioSpec(scavenger_size=2.5).build_scavenger()
        assert isinstance(scavenger, EnergyScavenger)
        assert scavenger.size_factor == pytest.approx(2.5)

    def test_build_storage_and_cycle(self):
        spec = ScenarioSpec(drive_cycle={"name": "urban", "params": {"repetitions": 1}})
        assert isinstance(spec.build_storage(), StorageElement)
        cycle = spec.build_drive_cycle()
        assert isinstance(cycle, DriveCycle)
        assert ScenarioSpec(storage=None).build_storage() is None
        assert ScenarioSpec().build_drive_cycle() is None

    def test_operating_point_reflects_environment(self):
        point = ScenarioSpec(
            temperature_c=-20.0,
            speed_kmh=90.0,
            supply_corner="min",
            process_corner="fast",
        ).operating_point()
        assert point.temperature_c == -20.0
        assert point.speed_kmh == 90.0
        assert point.supply.corner == "min"
        assert point.process.corner.name == "FAST"

    def test_describe_mentions_components(self):
        text = ScenarioSpec(architecture="optimized", drive_cycle="nedc").describe()
        assert "optimized" in text
        assert "nedc" in text


class TestLoadScenario:
    def test_load_from_file(self, tmp_path):
        path = ScenarioSpec(name="saved").save(tmp_path / "spec.json")
        assert load_scenario(path) == ScenarioSpec(name="saved")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read scenario file"):
            load_scenario(tmp_path / "missing.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{]")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_scenario(path)


# ---------------------------------------------------------------------------
# Property: from_dict(to_dict()) is the identity over randomized valid specs.
# ---------------------------------------------------------------------------

_architectures = st.sampled_from(["baseline", "optimized", "legacy-tpms"])
_databases = st.sampled_from(["reference", "low-power", "high-performance"])
_scavengers = st.sampled_from(["piezoelectric", "electromagnetic", "electrostatic"])
_storages = st.one_of(
    st.none(),
    st.sampled_from(["supercapacitor", "thin-film-battery"]),
)
_cycles = st.one_of(
    st.none(),
    st.sampled_from(["urban", "nedc", "highway"]),
    st.builds(
        lambda reps: {"name": "urban", "params": {"repetitions": reps}},
        st.integers(min_value=1, max_value=4),
    ),
)

_specs = st.builds(
    ScenarioSpec,
    name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1,
        max_size=12,
    ),
    architecture=_architectures,
    power_database=_databases,
    scavenger=_scavengers,
    scavenger_size=st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    storage=_storages,
    drive_cycle=_cycles,
    temperature_c=st.floats(min_value=-60.0, max_value=200.0, allow_nan=False),
    speed_kmh=st.floats(min_value=1.0, max_value=300.0, allow_nan=False),
    supply_corner=st.sampled_from(["min", "nom", "max"]),
    process_corner=st.sampled_from(["typical", "fast", "slow", "tt", "ff", "ss"]),
    tx_interval_revs=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    payload_bits=st.one_of(st.none(), st.integers(min_value=8, max_value=512)),
)


class TestRoundTripProperty:
    @settings(max_examples=120, deadline=None)
    @given(spec=_specs)
    def test_dict_round_trip_is_identity(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_json_round_trip_is_identity(self, spec):
        assert ScenarioSpec.from_dict(json.loads(spec.to_json())) == spec
