"""Tests for the chunked execution engine (scheduling shared by study + fleet)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError
from repro.scenario.engine import ChunkedEngine, EngineReport


def _square_worker(payload):
    """Module-level (picklable) process worker used by the backend tests."""
    base, offset = payload
    return base * base + offset


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "four"])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(ConfigError, match="workers"):
            ChunkedEngine(workers=bad)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            ChunkedEngine(backend="quantum")

    @pytest.mark.parametrize("bad", [0, -3, 2.0, False])
    def test_invalid_chunk_size_rejected(self, bad):
        with pytest.raises(ConfigError, match="chunk_size"):
            ChunkedEngine(chunk_size=bad)

    def test_process_backend_requires_worker_and_payload(self):
        engine = ChunkedEngine(workers=2, backend="process")
        with pytest.raises(ConfigError, match="process_worker"):
            engine.run([1, 2, 3], kernel=lambda x: x, sink=lambda i, r: None)


class TestSequential:
    def test_results_stream_in_order(self):
        received = []
        report = ChunkedEngine().run(
            range(5), lambda item: item * 10, lambda i, r: received.append((i, r))
        )
        assert received == [(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]
        assert report.backend == "sequential"
        assert report.items == 5
        assert len(report.item_wall_times_s) == 5

    def test_single_item_never_starts_a_pool(self):
        report = ChunkedEngine(workers=8).run([7], lambda item: item, lambda i, r: None)
        assert report.backend == "sequential"
        assert report.workers == 1

    def test_empty_items(self):
        rows = []
        report = ChunkedEngine(workers=4).run([], lambda item: item, lambda i, r: rows.append(r))
        assert rows == []
        assert report.items == 0
        assert report.item_wall_times_s == ()

    def test_report_is_frozen(self):
        report = ChunkedEngine().run([1], lambda item: item, lambda i, r: None)
        assert isinstance(report, EngineReport)
        with pytest.raises(AttributeError):
            report.items = 99


class TestThreadBackend:
    def test_order_preserved_and_identical_to_sequential(self):
        items = list(range(40))
        sequential = []
        ChunkedEngine().run(items, lambda x: x * x, lambda i, r: sequential.append(r))
        parallel = []
        report = ChunkedEngine(workers=4).run(
            items, lambda x: x * x, lambda i, r: parallel.append(r)
        )
        assert parallel == sequential
        assert report.backend == "thread"
        assert report.workers == 4

    def test_kernel_actually_runs_on_worker_threads(self):
        seen = set()

        def kernel(item):
            seen.add(threading.current_thread().name)
            return item

        ChunkedEngine(workers=3).run(range(30), kernel, lambda i, r: None)
        assert all("MainThread" != name for name in seen)

    def test_chunking_streams_between_chunks(self):
        # chunk span = chunk_size * workers = 4: the sink must have received
        # the whole first chunk before the last item is computed.
        order = []

        def kernel(item):
            order.append(("run", item))
            return item

        def sink(index, result):
            order.append(("sink", result))

        ChunkedEngine(workers=2, chunk_size=2).run(range(8), kernel, sink)
        first_sink = order.index(("sink", 0))
        assert ("run", 7) not in order[:first_sink]
        assert [entry for entry in order if entry[0] == "sink"] == [
            ("sink", i) for i in range(8)
        ]

    def test_items_may_be_a_lazy_iterator(self):
        def generate():
            yield from range(25)

        received = []
        report = ChunkedEngine(workers=4, chunk_size=2).run(
            generate(), lambda x: x + 1, lambda i, r: received.append(r)
        )
        assert received == list(range(1, 26))
        assert report.items == 25


class TestProcessBackend:
    def test_rows_match_sequential(self):
        items = list(range(12))
        sequential = []
        ChunkedEngine().run(items, lambda x: x * x + 1, lambda i, r: sequential.append(r))
        parallel = []
        report = ChunkedEngine(workers=2, backend="process").run(
            items,
            kernel=lambda x: x * x + 1,
            sink=lambda i, r: parallel.append(r),
            process_worker=_square_worker,
            process_payload=lambda item: (item, 1),
        )
        assert parallel == sequential
        assert report.backend == "process"
        assert all(elapsed > 0.0 for elapsed in report.item_wall_times_s)

    def test_single_item_process_run_uses_the_kernel_in_process(self):
        # One item degrades to sequential: the in-process kernel runs, the
        # pool (and the payload function) is never touched.
        def exploding_payload(item):  # pragma: no cover - must not run
            raise AssertionError("payload built for a sequential run")

        rows = []
        report = ChunkedEngine(workers=4, backend="process").run(
            [3],
            kernel=lambda x: x + 1,
            sink=lambda i, r: rows.append(r),
            process_worker=_square_worker,
            process_payload=exploding_payload,
        )
        assert rows == [4]
        assert report.backend == "sequential"


class _Flaky:
    """Kernel failing the first ``fail_times`` calls per item."""

    def __init__(self, fail_times: int):
        self.fail_times = fail_times
        self.calls: dict[object, int] = {}
        self.lock = threading.Lock()

    def __call__(self, item):
        with self.lock:
            count = self.calls.get(item, 0) + 1
            self.calls[item] = count
        if count <= self.fail_times:
            raise ValueError(f"transient failure {count} on {item}")
        return item * 2


class TestRetries:
    @pytest.mark.parametrize("bad", [-1, 1.5, True])
    def test_invalid_retries_rejected(self, bad):
        with pytest.raises(ConfigError, match="retries"):
            ChunkedEngine(retries=bad)

    def test_invalid_failure_mode_rejected(self):
        with pytest.raises(ConfigError, match="failure_mode"):
            ChunkedEngine(failure_mode="shrug")

    @pytest.mark.parametrize("workers", [1, 3])
    def test_transient_failures_retried_to_success(self, workers):
        kernel = _Flaky(fail_times=2)
        received = []
        report = ChunkedEngine(workers=workers, retries=2, retry_backoff_s=0.0).run(
            range(5), kernel, lambda i, r: received.append((i, r))
        )
        assert received == [(i, i * 2) for i in range(5)]
        assert report.failures == ()
        assert report.retries == 10  # 2 extra attempts x 5 items

    def test_raise_mode_propagates_the_original_exception_type(self):
        kernel = _Flaky(fail_times=5)
        with pytest.raises(ValueError, match="transient failure"):
            ChunkedEngine(retries=1, retry_backoff_s=0.0).run(
                range(3), kernel, lambda i, r: None
            )

    def test_no_retries_behaves_like_the_pre_retry_engine(self):
        def kernel(item):
            raise KeyError(item)

        with pytest.raises(KeyError):
            ChunkedEngine().run(range(3), kernel, lambda i, r: None)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_collect_mode_skips_failed_items_and_records_them(self, workers):
        def kernel(item):
            if item == 2:
                raise RuntimeError("poisoned item")
            return item

        received = []
        report = ChunkedEngine(
            workers=workers, retries=1, retry_backoff_s=0.0, failure_mode="collect"
        ).run(range(5), kernel, lambda i, r: received.append((i, r)))
        assert received == [(0, 0), (1, 1), (3, 3), (4, 4)]
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.index == 2
        assert failure.attempts == 2
        assert failure.kind == "exception"
        assert "poisoned item" in failure.error
        assert len(report.item_wall_times_s) == 5

    def test_failure_round_trips_through_dict(self):
        from repro.scenario.engine import EngineFailure

        failure = EngineFailure(index=3, attempts=2, kind="worker-death", error="gone")
        assert EngineFailure.from_dict(failure.to_dict()) == failure


class TestRunChunks:
    def test_invalid_max_new_chunks_rejected(self):
        with pytest.raises(ConfigError, match="max_new_chunks"):
            ChunkedEngine().run_chunks([[1]], lambda x: x, lambda i, r: None, max_new_chunks=0)

    def test_global_indices_span_chunks(self):
        received = []
        report = ChunkedEngine().run_chunks(
            [[1, 2], [3], [4, 5, 6]], lambda x: x * 10, lambda i, r: received.append((i, r))
        )
        assert received == [(0, 10), (1, 20), (2, 30), (3, 40), (4, 50), (5, 60)]
        assert report.chunks == 3
        assert report.items == 6
        assert report.stopped_early is False

    def test_max_new_chunks_stops_early(self):
        received = []
        report = ChunkedEngine().run_chunks(
            [[1], [2], [3]], lambda x: x, lambda i, r: received.append(r), max_new_chunks=2
        )
        assert received == [1, 2]
        assert report.chunks == 2
        assert report.stopped_early is True

    def test_lazy_chunk_iterator_is_consumed_incrementally(self):
        produced = []

        def chunks():
            for index in range(3):
                produced.append(index)
                yield [index]

        consumed_at_first_sink = []

        def sink(i, r):
            if not consumed_at_first_sink:
                consumed_at_first_sink.append(list(produced))

        ChunkedEngine().run_chunks(chunks(), lambda x: x, sink)
        # Only the first chunk had been pulled when its result streamed out.
        assert consumed_at_first_sink == [[0]]

    def test_collect_failures_reindexed_globally(self):
        def kernel(item):
            if item == "bad":
                raise RuntimeError("nope")
            return item

        received = []
        report = ChunkedEngine(failure_mode="collect").run_chunks(
            [["a", "b"], ["bad", "c"]], kernel, lambda i, r: received.append((i, r))
        )
        assert received == [(0, "a"), (1, "b"), (3, "c")]
        assert [failure.index for failure in report.failures] == [2]
