"""Tests for the chunked execution engine (scheduling shared by study + fleet)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError
from repro.scenario.engine import ChunkedEngine, EngineReport


def _square_worker(payload):
    """Module-level (picklable) process worker used by the backend tests."""
    base, offset = payload
    return base * base + offset


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "four"])
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(ConfigError, match="workers"):
            ChunkedEngine(workers=bad)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            ChunkedEngine(backend="quantum")

    @pytest.mark.parametrize("bad", [0, -3, 2.0, False])
    def test_invalid_chunk_size_rejected(self, bad):
        with pytest.raises(ConfigError, match="chunk_size"):
            ChunkedEngine(chunk_size=bad)

    def test_process_backend_requires_worker_and_payload(self):
        engine = ChunkedEngine(workers=2, backend="process")
        with pytest.raises(ConfigError, match="process_worker"):
            engine.run([1, 2, 3], kernel=lambda x: x, sink=lambda i, r: None)


class TestSequential:
    def test_results_stream_in_order(self):
        received = []
        report = ChunkedEngine().run(
            range(5), lambda item: item * 10, lambda i, r: received.append((i, r))
        )
        assert received == [(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]
        assert report.backend == "sequential"
        assert report.items == 5
        assert len(report.item_wall_times_s) == 5

    def test_single_item_never_starts_a_pool(self):
        report = ChunkedEngine(workers=8).run([7], lambda item: item, lambda i, r: None)
        assert report.backend == "sequential"
        assert report.workers == 1

    def test_empty_items(self):
        rows = []
        report = ChunkedEngine(workers=4).run([], lambda item: item, lambda i, r: rows.append(r))
        assert rows == []
        assert report.items == 0
        assert report.item_wall_times_s == ()

    def test_report_is_frozen(self):
        report = ChunkedEngine().run([1], lambda item: item, lambda i, r: None)
        assert isinstance(report, EngineReport)
        with pytest.raises(AttributeError):
            report.items = 99


class TestThreadBackend:
    def test_order_preserved_and_identical_to_sequential(self):
        items = list(range(40))
        sequential = []
        ChunkedEngine().run(items, lambda x: x * x, lambda i, r: sequential.append(r))
        parallel = []
        report = ChunkedEngine(workers=4).run(
            items, lambda x: x * x, lambda i, r: parallel.append(r)
        )
        assert parallel == sequential
        assert report.backend == "thread"
        assert report.workers == 4

    def test_kernel_actually_runs_on_worker_threads(self):
        seen = set()

        def kernel(item):
            seen.add(threading.current_thread().name)
            return item

        ChunkedEngine(workers=3).run(range(30), kernel, lambda i, r: None)
        assert all("MainThread" != name for name in seen)

    def test_chunking_streams_between_chunks(self):
        # chunk span = chunk_size * workers = 4: the sink must have received
        # the whole first chunk before the last item is computed.
        order = []

        def kernel(item):
            order.append(("run", item))
            return item

        def sink(index, result):
            order.append(("sink", result))

        ChunkedEngine(workers=2, chunk_size=2).run(range(8), kernel, sink)
        first_sink = order.index(("sink", 0))
        assert ("run", 7) not in order[:first_sink]
        assert [entry for entry in order if entry[0] == "sink"] == [
            ("sink", i) for i in range(8)
        ]

    def test_items_may_be_a_lazy_iterator(self):
        def generate():
            yield from range(25)

        received = []
        report = ChunkedEngine(workers=4, chunk_size=2).run(
            generate(), lambda x: x + 1, lambda i, r: received.append(r)
        )
        assert received == list(range(1, 26))
        assert report.items == 25


class TestProcessBackend:
    def test_rows_match_sequential(self):
        items = list(range(12))
        sequential = []
        ChunkedEngine().run(items, lambda x: x * x + 1, lambda i, r: sequential.append(r))
        parallel = []
        report = ChunkedEngine(workers=2, backend="process").run(
            items,
            kernel=lambda x: x * x + 1,
            sink=lambda i, r: parallel.append(r),
            process_worker=_square_worker,
            process_payload=lambda item: (item, 1),
        )
        assert parallel == sequential
        assert report.backend == "process"
        assert all(elapsed > 0.0 for elapsed in report.item_wall_times_s)

    def test_single_item_process_run_uses_the_kernel_in_process(self):
        # One item degrades to sequential: the in-process kernel runs, the
        # pool (and the payload function) is never touched.
        def exploding_payload(item):  # pragma: no cover - must not run
            raise AssertionError("payload built for a sequential run")

        rows = []
        report = ChunkedEngine(workers=4, backend="process").run(
            [3],
            kernel=lambda x: x + 1,
            sink=lambda i, r: rows.append(r),
            process_worker=_square_worker,
            process_payload=exploding_payload,
        )
        assert rows == [4]
        assert report.backend == "sequential"
