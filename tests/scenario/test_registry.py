"""Tests for the scenario component registries."""

from __future__ import annotations

import pytest

from repro.blocks.architectures import baseline_node
from repro.errors import ConfigError, ConfigurationError
from repro.scenario.registry import (
    ARCHITECTURES,
    DRIVE_CYCLES,
    POWER_DATABASES,
    SCAVENGERS,
    STORAGE_ELEMENTS,
    Registry,
    register_architecture,
)


class TestSeededRegistries:
    def test_architectures_seeded_from_catalogue(self):
        assert {"baseline", "optimized", "legacy-tpms"} <= set(ARCHITECTURES.names())

    def test_power_databases_seeded(self):
        assert {"reference", "low-power", "high-performance"} <= set(POWER_DATABASES.names())

    def test_scavengers_seeded(self):
        assert {"piezoelectric", "electromagnetic", "electrostatic"} <= set(SCAVENGERS.names())

    def test_storage_seeded(self):
        assert {"supercapacitor", "thin-film-battery"} <= set(STORAGE_ELEMENTS.names())

    def test_cycles_seeded(self):
        assert {"urban", "nedc", "highway", "constant", "ramp"} <= set(DRIVE_CYCLES.names())

    def test_contains_and_len(self):
        assert "baseline" in ARCHITECTURES
        assert "warp-drive" not in ARCHITECTURES
        assert len(ARCHITECTURES) >= 3

    def test_create_builds_components(self):
        node = ARCHITECTURES.create("baseline")
        assert node.name == "baseline"
        cycle = DRIVE_CYCLES.create("constant", speed_kmh=80.0)
        assert cycle.max_speed_kmh() == 80.0


class TestErrors:
    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ConfigError, match="unknown architecture 'warp-drive'"):
            ARCHITECTURES.create("warp-drive")
        with pytest.raises(ConfigError, match="baseline"):
            ARCHITECTURES.create("warp-drive")

    def test_bad_params_reported_as_config_error(self):
        with pytest.raises(ConfigError, match="invalid parameters"):
            DRIVE_CYCLES.create("urban", warp_factor=9)

    def test_factory_internal_type_error_is_not_masked(self):
        registry = Registry("thing")

        def buggy():
            return None + 1

        registry.register("buggy", buggy)
        with pytest.raises(TypeError, match="unsupported operand"):
            registry.create("buggy")

    def test_config_error_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            ARCHITECTURES.create("warp-drive")


class TestUserExtension:
    def test_register_decorator_and_unregister(self):
        @register_architecture("test-only-node")
        def factory():
            return baseline_node().renamed("test-only-node")

        try:
            assert "test-only-node" in ARCHITECTURES
            node = ARCHITECTURES.create("test-only-node")
            assert node.name == "test-only-node"
        finally:
            ARCHITECTURES.unregister("test-only-node")
        assert "test-only-node" not in ARCHITECTURES

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            ARCHITECTURES.register("baseline", baseline_node)

    def test_unregister_unknown_rejected(self):
        registry = Registry("thing")
        with pytest.raises(ConfigError, match="no thing named"):
            registry.unregister("ghost")

    def test_empty_name_rejected(self):
        registry = Registry("thing")
        with pytest.raises(ConfigError, match="non-empty string"):
            registry.register("", baseline_node)
