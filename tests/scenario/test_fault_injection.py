"""Fault injection: flaky components, dying workers, damaged checkpoints.

Every scenario here either recovers to a byte-identical result or fails
with a one-line actionable error — never a half-written journal, never a
silent partial aggregate.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import CheckpointError, EngineError
from repro.fleet import FleetRunner, FleetSpec
from repro.scavenger.piezoelectric import PiezoelectricScavenger
from repro.scenario.checkpoint import CheckpointStore
from repro.scenario.engine import ChunkedEngine
from repro.scenario.registry import SCAVENGERS
from repro.scenario.spec import ScenarioSpec

# ---------------------------------------------------------------------------
# Flaky registry-injected scavenger
# ---------------------------------------------------------------------------

#: Module-level glitch state so every vehicle kernel (and forked worker at
#: pool start) sees the same counters.
_FLAKY = {"remaining": 0, "calls": 0}


class _FlakyScavenger(PiezoelectricScavenger):
    """Piezo harvester whose vectorized sweep glitches for the first N calls."""

    def raw_energy_sweep_j(self, speeds_kmh):
        _FLAKY["calls"] += 1
        if _FLAKY["remaining"] > 0:
            _FLAKY["remaining"] -= 1
            raise RuntimeError("transient sensor glitch")
        return super().raw_energy_sweep_j(speeds_kmh)


@pytest.fixture
def flaky_scavenger():
    SCAVENGERS.register("flaky-piezo", _FlakyScavenger)
    _FLAKY["remaining"] = 0
    _FLAKY["calls"] = 0
    try:
        yield
    finally:
        SCAVENGERS.unregister("flaky-piezo")


def _fleet(scavenger: str = "flaky-piezo", vehicles: int = 8, chunk: int = 3) -> FleetSpec:
    base = ScenarioSpec(
        name="faulty",
        drive_cycle={"name": "urban", "params": {"repetitions": 1}},
        scavenger=scavenger,
    )
    return FleetSpec.from_base(base, vehicles=vehicles, seed=11, chunk_vehicles=chunk)


class TestFlakyScavenger:
    def test_retries_recover_to_identical_rows(self, flaky_scavenger):
        reference = FleetRunner(_fleet()).run()
        assert _FLAKY["calls"] > 0  # the injected scavenger really ran

        _FLAKY["remaining"] = 2
        recovered = FleetRunner(_fleet(), retries=2).run()
        assert _FLAKY["remaining"] == 0  # both glitches fired
        assert recovered.metadata["failures"] == []
        assert recovered.metadata["partial"] is False
        assert recovered.metadata["retries"] >= 2
        assert recovered.vehicle_rows == reference.vehicle_rows
        assert recovered.summary == reference.summary

    def test_without_retries_the_glitch_aborts_the_run(self, flaky_scavenger):
        _FLAKY["remaining"] = 1
        with pytest.raises(RuntimeError, match="transient sensor glitch"):
            FleetRunner(_fleet()).run()

    def test_exhausted_budget_degrades_to_structured_failures(self, flaky_scavenger):
        # 4 glitches against a 1-retry budget: the first two vehicles burn
        # both their attempts and fail; the rest of the fleet completes.
        _FLAKY["remaining"] = 4
        result = FleetRunner(_fleet(), retries=1).run()
        metadata = result.metadata
        assert metadata["vehicles_failed"] == 2
        assert metadata["partial"] is True
        assert [failure["index"] for failure in metadata["failures"]] == [0, 1]
        assert all(
            failure["kind"] == "exception" and "glitch" in failure["error"]
            for failure in metadata["failures"]
        )
        assert len(result.vehicle_rows) == 6
        assert result.summary["vehicles"] == 6
        # Surviving rows are untouched by the neighbours' failures.
        reference = FleetRunner(_fleet()).run()
        assert result.vehicle_rows == reference.vehicle_rows[2:]


# ---------------------------------------------------------------------------
# Worker killed mid-chunk
# ---------------------------------------------------------------------------


def _dying_worker(payload):
    """Module-level process worker that kills its process once per flag file."""
    value, flag_path = payload
    if value == 5 and not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8") as handle:
            handle.write("died here once\n")
            handle.flush()
            os.fsync(handle.fileno())
        os._exit(3)
    return value * 2


class TestWorkerDeath:
    def test_pool_rebuilt_and_run_completed_within_budget(self, tmp_path):
        flag = str(tmp_path / "died.flag")
        received = []
        report = ChunkedEngine(workers=2, backend="process", retries=1).run(
            range(10),
            kernel=lambda x: x * 2,
            sink=lambda i, r: received.append((i, r)),
            process_worker=_dying_worker,
            process_payload=lambda item: (item, flag),
        )
        assert received == [(i, i * 2) for i in range(10)]
        assert report.pool_rebuilds >= 1
        assert report.retries >= 1
        assert report.failures == ()
        assert os.path.exists(flag)

    def test_without_retries_death_is_a_structured_engine_error(self, tmp_path):
        flag = str(tmp_path / "never-written-twice.flag")
        with pytest.raises(EngineError, match=r"process worker died while running item"):
            ChunkedEngine(workers=2, backend="process").run(
                range(10),
                kernel=lambda x: x * 2,
                sink=lambda i, r: None,
                process_worker=_dying_worker,
                process_payload=lambda item: (item, flag),
            )

    def test_run_chunks_names_the_failing_chunk(self, tmp_path):
        flag = str(tmp_path / "died.flag")
        with pytest.raises(EngineError, match=r"chunk 1: process worker died"):
            ChunkedEngine(workers=2, backend="process").run_chunks(
                [[0, 1, 2], [3, 4, 5, 6, 7], [8, 9]],
                kernel=lambda x: x * 2,
                sink=lambda i, r: None,
                process_worker=_dying_worker,
                process_payload=lambda item: (item, flag),
            )

    def test_kill_then_resume_is_identical_to_a_clean_run(self, tmp_path):
        """A mid-chunk death with checkpointing resumes to the clean result."""
        flag = str(tmp_path / "died.flag")
        chunks = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        key = {"kind": "kill-test", "items": 10}

        # Interrupted run: the worker dies on item 5; the death aborts the
        # run (no retries), but chunk 0 is already journaled.
        store = CheckpointStore(tmp_path / "ckpt", key)
        partial = []
        with pytest.raises(EngineError, match="chunk 1"):
            ChunkedEngine(workers=2, backend="process").run_chunks(
                chunks,
                kernel=lambda x: x * 2,
                sink=lambda i, r: partial.append((i, r)),
                checkpoint=store,
                process_worker=_dying_worker,
                process_payload=lambda item: (item, flag),
            )
        assert store.completed_chunks == (0,)

        # Resume: chunk 0 replays, the rest computes (the flag file makes the
        # worker survive now) — the combined stream equals a clean run.
        resumed = []
        report = ChunkedEngine(workers=2, backend="process").run_chunks(
            chunks,
            kernel=lambda x: x * 2,
            sink=lambda i, r: resumed.append((i, r)),
            checkpoint=CheckpointStore(tmp_path / "ckpt", key),
            process_worker=_dying_worker,
            process_payload=lambda item: (item, flag),
        )
        assert resumed == [(i, i * 2) for i in range(10)]
        assert report.resumed_chunks == 1


# ---------------------------------------------------------------------------
# Damaged checkpoints under the fleet runner
# ---------------------------------------------------------------------------


def _plain_fleet(vehicles: int = 9, chunk: int = 3) -> FleetSpec:
    base = ScenarioSpec(
        name="damage",
        drive_cycle={"name": "urban", "params": {"repetitions": 1}},
    )
    return FleetSpec.from_base(base, vehicles=vehicles, seed=13, chunk_vehicles=chunk)


class TestDamagedCheckpoints:
    def test_truncated_chunk_file_is_one_line_actionable(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        FleetRunner(_plain_fleet(), checkpoint=str(ckpt), max_chunks=2).run()
        chunk_file = ckpt / "chunk-00000.json"
        chunk_file.write_bytes(chunk_file.read_bytes()[:-20])
        with pytest.raises(CheckpointError, match="corrupt \\(digest mismatch\\).*rerun"):
            FleetRunner(_plain_fleet(), checkpoint=str(ckpt)).run()

    def test_corrupted_manifest_is_one_line_actionable(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        FleetRunner(_plain_fleet(), checkpoint=str(ckpt), max_chunks=1).run()
        manifest = ckpt / "manifest.json"
        manifest.write_text(manifest.read_text(encoding="utf-8")[:-30], encoding="utf-8")
        with pytest.raises(CheckpointError, match="not valid JSON.*delete the checkpoint"):
            FleetRunner(_plain_fleet(), checkpoint=str(ckpt)).run()

    def test_checkpoint_of_a_different_fleet_is_refused(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        FleetRunner(_plain_fleet(), checkpoint=str(ckpt), max_chunks=1).run()
        other = _plain_fleet().with_population(seed=99)
        with pytest.raises(CheckpointError, match="belongs to a different run"):
            FleetRunner(other, checkpoint=str(ckpt)).run()

    def test_manifest_never_blesses_a_chunk_before_its_file_exists(self, tmp_path):
        """Crash-ordering invariant: every manifest entry's file is on disk

        and passes its digest the moment the manifest names it."""
        ckpt = tmp_path / "ckpt"
        FleetRunner(_plain_fleet(), checkpoint=str(ckpt)).run()
        manifest = json.loads((ckpt / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["chunks"]  # the run journaled something
        store = CheckpointStore(ckpt, json.loads(json.dumps(manifest["key"])))
        for label in manifest["chunks"]:
            store.load_chunk(int(label))  # digest-checked load must succeed
