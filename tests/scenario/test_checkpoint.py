"""CheckpointStore: crash-safe journaling, digests, one-line failure modes."""

import json
import math

import pytest

from repro.errors import CheckpointError
from repro.scenario.checkpoint import CheckpointStore


KEY = {"kind": "test", "seed": 7, "spec": {"name": "x"}}


class TestCheckpointStore:
    def test_fresh_directory_writes_manifest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", KEY)
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["key_sha256"] == store.key_sha256
        assert manifest["chunks"] == {}
        assert store.completed_chunks == ()

    def test_record_and_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        results = [{"value": 1.5}, {"value": 2.25}]
        store.record_chunk(0, results=results, wall_times_s=[0.1, 0.2])
        assert store.has_chunk(0)
        assert not store.has_chunk(1)
        loaded, wall_times, failures = store.load_chunk(0, expected_items=2)
        assert loaded == results
        assert wall_times == [0.1, 0.2]
        assert failures == []

    def test_reopen_sees_journaled_chunks(self, tmp_path):
        CheckpointStore(tmp_path, KEY).record_chunk(3, results=[1], wall_times_s=[0.0])
        reopened = CheckpointStore(tmp_path, KEY)
        assert reopened.completed_chunks == (3,)
        assert reopened.load_chunk(3)[0] == [1]

    def test_nan_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        store.record_chunk(0, results=[{"v": float("nan")}], wall_times_s=[0.0])
        loaded, _, _ = CheckpointStore(tmp_path, KEY).load_chunk(0)
        assert math.isnan(loaded[0]["v"])

    def test_float_values_round_trip_exactly(self, tmp_path):
        values = [0.1, 1e-300, 2**53 - 1.0, -3.141592653589793]
        store = CheckpointStore(tmp_path, KEY)
        store.record_chunk(0, results=values, wall_times_s=[0.0] * 4)
        assert CheckpointStore(tmp_path, KEY).load_chunk(0)[0] == values

    def test_failures_are_journaled(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        failure = {"index": 1, "attempts": 2, "kind": "exception", "error": "boom"}
        store.record_chunk(0, results=[5, None], wall_times_s=[0.1, 0.0], failures=[failure])
        _, _, failures = CheckpointStore(tmp_path, KEY).load_chunk(0)
        assert failures == [failure]

    def test_different_key_is_refused(self, tmp_path):
        CheckpointStore(tmp_path, KEY)
        with pytest.raises(CheckpointError, match="belongs to a different run"):
            CheckpointStore(tmp_path, {**KEY, "seed": 8})

    def test_corrupt_manifest_is_one_line_actionable(self, tmp_path):
        CheckpointStore(tmp_path, KEY)
        (tmp_path / "manifest.json").write_text("{ truncated", encoding="utf-8")
        with pytest.raises(CheckpointError, match="not valid JSON.*delete the checkpoint"):
            CheckpointStore(tmp_path, KEY)

    def test_unsupported_version_is_refused(self, tmp_path):
        CheckpointStore(tmp_path, KEY)
        (tmp_path / "manifest.json").write_text(
            json.dumps({"checkpoint": 99, "key_sha256": "x", "chunks": {}}),
            encoding="utf-8",
        )
        with pytest.raises(CheckpointError, match="unsupported layout"):
            CheckpointStore(tmp_path, KEY)

    def test_truncated_chunk_file_fails_digest(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        path = store.record_chunk(0, results=[1, 2, 3], wall_times_s=[0.0] * 3)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(CheckpointError, match="corrupt \\(digest mismatch\\)"):
            CheckpointStore(tmp_path, KEY).load_chunk(0)

    def test_missing_chunk_file(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        path = store.record_chunk(0, results=[1], wall_times_s=[0.0])
        path.unlink()
        with pytest.raises(CheckpointError, match="missing"):
            CheckpointStore(tmp_path, KEY).load_chunk(0)

    def test_item_count_mismatch_names_the_cause(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        store.record_chunk(0, results=[1, 2], wall_times_s=[0.0, 0.0])
        with pytest.raises(CheckpointError, match="run parameters changed"):
            store.load_chunk(0, expected_items=5)

    def test_unjournaled_chunk_load_raises(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        with pytest.raises(CheckpointError, match="not journaled"):
            store.load_chunk(4)

    def test_orphan_chunk_file_is_not_blessed(self, tmp_path):
        """A chunk file without a manifest entry (crash window) is recomputed."""
        store = CheckpointStore(tmp_path, KEY)
        (tmp_path / "chunk-00001.json").write_text('{"results": [9]}', encoding="utf-8")
        assert not store.has_chunk(1)
        assert not CheckpointStore(tmp_path, KEY).has_chunk(1)

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        store.record_chunk(0, results=[1], wall_times_s=[0.0])
        assert not list(tmp_path.glob("*.tmp"))

    def test_unserializable_results_raise_checkpoint_error(self, tmp_path):
        store = CheckpointStore(tmp_path, KEY)
        with pytest.raises(CheckpointError, match="not JSON-serializable"):
            store.record_chunk(0, results=[object()], wall_times_s=[0.0])

    def test_key_must_be_canonical_json(self, tmp_path):
        with pytest.raises(CheckpointError, match="not canonical JSON"):
            CheckpointStore(tmp_path, {"bad": object()})

    def test_concurrent_stores_merge_instead_of_clobbering(self, tmp_path):
        """Two replicas journaling one run never drop each other's chunks."""
        alpha = CheckpointStore(tmp_path, KEY)
        beta = CheckpointStore(tmp_path, KEY)
        alpha.record_chunk(0, results=[1, 2], wall_times_s=[0.0, 0.0])
        # beta opened before alpha's write; its record merges the on-disk
        # manifest first, so chunk 0 survives chunk 1's blessing.
        beta.record_chunk(1, results=[3, 4], wall_times_s=[0.0, 0.0])
        assert beta.completed_chunks == (0, 1)
        survivor = CheckpointStore(tmp_path, KEY)
        assert survivor.completed_chunks == (0, 1)
        assert survivor.load_chunk(0)[0] == [1, 2]
        assert survivor.load_chunk(1)[0] == [3, 4]

    def test_foreign_journaled_chunk_wins_over_a_re_record(self, tmp_path):
        alpha = CheckpointStore(tmp_path, KEY)
        beta = CheckpointStore(tmp_path, KEY)
        first = alpha.record_chunk(0, results=[1], wall_times_s=[0.1])
        # beta computed the same chunk concurrently; the journaled file wins
        # (byte-identical by construction) and beta adopts it.
        second = beta.record_chunk(0, results=[1], wall_times_s=[0.2])
        assert second == first
        assert CheckpointStore(tmp_path, KEY).load_chunk(0)[1] == [0.1]
