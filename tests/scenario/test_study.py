"""Tests for the Study runner: grid expansion, evaluator sharing, analysis kinds."""

from __future__ import annotations

import json

import pytest

from repro.core.evaluator import EnergyEvaluator
from repro.errors import ConfigError
from repro.power.compiled import CompiledPowerTable
from repro.scenario.spec import ScenarioSpec
from repro.scenario.study import STUDY_KINDS, Study, run_study


@pytest.fixture
def grid_study():
    """The acceptance grid: 3 temperatures x 2 architectures."""
    return Study(
        ScenarioSpec(name="grid"),
        axes={
            "temperature": [-20.0, 25.0, 85.0],
            "architecture": ["baseline", "optimized"],
        },
    )


class TestGridExpansion:
    def test_grid_size(self, grid_study):
        assert len(grid_study) == 6
        assert len(grid_study.scenarios()) == 6

    def test_scenarios_carry_overrides(self, grid_study):
        overrides, spec = grid_study.scenarios()[0]
        assert overrides == {"temperature": -20.0, "architecture": "baseline"}
        assert spec.temperature_c == -20.0
        assert spec.architecture.name == "baseline"

    def test_no_axes_is_single_scenario(self):
        study = Study(ScenarioSpec())
        assert len(study) == 1
        assert study.scenarios()[0][0] == {}

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario axis"):
            Study(ScenarioSpec(), axes={"humidity": [0.1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="at least one value"):
            Study(ScenarioSpec(), axes={"temperature": []})

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigError, match="needs a ScenarioSpec"):
            Study({"architecture": "baseline"})

    def test_alias_collision_rejected(self):
        with pytest.raises(ConfigError, match="both drive the scenario field"):
            Study(
                ScenarioSpec(),
                axes={"temperature": [-20.0, 85.0], "temperature_c": [25.0]},
            )


class TestEvaluatorSharing:
    def test_one_evaluator_per_architecture(self, grid_study):
        result = grid_study.run("balance")
        assert result.metadata["evaluator_builds"] == 2
        assert result.metadata["evaluator_cache_hits"] == 4

    def test_single_compiled_table_per_database(self, grid_study, monkeypatch):
        """The acceptance bar: the 3x2 grid compiles one table per database."""
        compilations = []
        original = CompiledPowerTable.from_database.__func__

        def counting(cls, database):
            compilations.append(database.name)
            return original(cls, database)

        monkeypatch.setattr(CompiledPowerTable, "from_database", classmethod(counting))
        result = grid_study.run("balance")
        assert len(result) == 6
        # Two architectures on one characterization library: exactly two
        # (node-adapted) databases, one compiled table each.
        assert len(compilations) == 2

    def test_workload_override_splits_the_cache(self):
        study = Study(
            ScenarioSpec(),
            axes={"tx_interval_revs": [1, 4], "temperature": [25.0, 85.0]},
        )
        result = study.run("report")
        assert result.metadata["evaluator_builds"] == 2
        assert result.metadata["evaluator_cache_hits"] == 2

    def test_counters_are_per_run(self):
        study = Study(ScenarioSpec(), axes={"temperature": [-20.0, 25.0]})
        first = study.run("report")
        assert first.metadata["evaluator_builds"] == 1
        assert first.metadata["evaluator_cache_hits"] == 1
        second = study.run("report")
        # The warm study rebuilds nothing; the metadata reports this run only.
        assert second.metadata["evaluator_builds"] == 0
        assert second.metadata["evaluator_cache_hits"] == 2

    def test_unhashable_component_params_are_cacheable(self):
        from repro.scenario.registry import ARCHITECTURES

        def nicknamed(nicknames=()):
            node = ARCHITECTURES.create("baseline")
            return node.renamed("-".join(["custom", *nicknames]))

        ARCHITECTURES.register("custom", nicknamed)
        try:
            spec = ScenarioSpec(
                architecture={"name": "custom", "params": {"nicknames": ["a", "b"]}}
            )
            result = Study(spec, axes={"temperature": [25.0, 85.0]}).run("report")
            assert len(result) == 2
            assert result.metadata["evaluator_builds"] == 1
        finally:
            ARCHITECTURES.unregister("custom")


class TestKinds:
    def test_balance_rows(self, grid_study):
        result = grid_study.run("balance")
        assert result.kind == "balance"
        row = result.rows[0]
        assert set(row) == {
            "scenario",
            "temperature",
            "architecture",
            "break_even_kmh",
            "required_uj_per_rev",
            "generated_uj_per_rev",
            "margin_uj_per_rev",
            "surplus",
        }
        for value in result.column("break_even_kmh"):
            assert 20.0 < value < 100.0

    def test_balance_matches_scalar_reference(self):
        spec = ScenarioSpec()
        result = run_study(spec, kind="balance")
        evaluator = EnergyEvaluator(spec.build_node(), spec.build_database())
        point = spec.operating_point()
        scalar = evaluator.energy_per_revolution_j(point)
        scalar = spec.build_node().pmu.referred_to_storage(scalar)
        assert result.rows[0]["required_uj_per_rev"] == pytest.approx(scalar * 1e6, rel=1e-9)

    def test_report_rows_match_scalar_reference(self):
        spec = ScenarioSpec(temperature_c=85.0)
        result = run_study(spec, kind="report")
        report = EnergyEvaluator(
            spec.build_node(), spec.build_database()
        ).average_report(spec.operating_point())
        row = result.rows[0]
        assert row["energy_per_rev_uj"] == pytest.approx(report.total_energy_j * 1e6, rel=1e-9)
        assert row["dynamic_uj"] == pytest.approx(report.dynamic_energy_j * 1e6, rel=1e-9)

    def test_optimize_rows_report_a_saving(self):
        result = run_study(ScenarioSpec(), kind="optimize")
        row = result.rows[0]
        assert row["energy_after_uj"] < row["energy_before_uj"]
        assert row["saving_pct"] > 0.0
        assert row["techniques"] >= 1

    def test_emulate_rows(self):
        spec = ScenarioSpec(drive_cycle={"name": "urban", "params": {"repetitions": 1}})
        result = run_study(spec, kind="emulate")
        row = result.rows[0]
        assert row["cycle_name"] == "urban-x1"
        assert row["revolutions"] > 0
        assert "brownout_events" in row

    def test_emulate_cycle_axis_column_keeps_the_axis_value(self):
        spec = ScenarioSpec()
        result = run_study(spec, axes={"cycle": ["urban", "nedc"]}, kind="emulate")
        # The swept axis value survives; the cycle's own label sits beside it.
        assert result.column("cycle") == ["urban", "nedc"]
        assert result.column("cycle_name") == ["urban-x4", "nedc-like"]

    def test_emulate_requires_cycle(self):
        with pytest.raises(ConfigError, match="drive_cycle"):
            run_study(ScenarioSpec(), kind="emulate")

    def test_emulate_requires_storage(self):
        spec = ScenarioSpec(storage=None, drive_cycle="nedc")
        with pytest.raises(ConfigError, match="storage"):
            run_study(spec, kind="emulate")

    def test_explore_rows(self):
        result = run_study(ScenarioSpec(), axes={"scavenger_size": [0.5, 1.0, 2.0]}, kind="explore")
        break_evens = result.column("break_even_kmh")
        # A larger scavenger activates earlier.
        assert break_evens[0] > break_evens[1] > break_evens[2]
        assert all(result.column("activates"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown analysis kind"):
            run_study(ScenarioSpec(), kind="interpolate")

    def test_every_kind_is_runnable(self):
        spec = ScenarioSpec(drive_cycle={"name": "urban", "params": {"repetitions": 1}})
        for kind in STUDY_KINDS:
            result = run_study(spec, kind=kind)
            assert len(result) == 1


class TestStudyResult:
    def test_rows_share_columns(self, grid_study):
        result = grid_study.run("balance")
        columns = list(result.rows[0])
        for row in result.rows:
            assert list(row) == columns

    def test_exports(self, grid_study, tmp_path):
        result = grid_study.run("balance")
        csv_path = result.to_csv(tmp_path / "grid.csv")
        json_path = result.to_json(tmp_path / "grid.json")
        assert len(csv_path.read_text().splitlines()) == 7
        assert len(json.loads(json_path.read_text())) == 6

    def test_as_table_renders(self, grid_study):
        table = grid_study.run("balance").as_table()
        assert "break_even_kmh" in table

    def test_unknown_column_rejected(self, grid_study):
        result = grid_study.run("balance")
        with pytest.raises(ConfigError, match="no column"):
            result.column("flux_capacitance")

    def test_metadata_records_the_grid(self, grid_study):
        result = grid_study.run("balance")
        assert result.metadata["grid_points"] == 6
        assert result.metadata["axes"]["temperature"] == [-20.0, 25.0, 85.0]
        assert result.metadata["base_scenario"]["name"] == "grid"


class TestParallelExecution:
    """Study.run(workers=N): identical rows, deterministic order, shared caches."""

    @pytest.mark.parametrize("kind", ["balance", "report", "montecarlo"])
    def test_workers_match_sequential_rows(self, kind):
        spec = ScenarioSpec(name="parallel")
        axes = {
            "temperature": [-20.0, 25.0, 85.0],
            "architecture": ["baseline", "optimized"],
        }
        sequential = Study(spec, axes=axes).run(kind)
        parallel = Study(spec, axes=axes).run(kind, workers=4)
        assert parallel.rows == sequential.rows
        assert parallel.axes == sequential.axes

    def test_workers_match_sequential_emulate(self):
        spec = ScenarioSpec(drive_cycle={"name": "urban", "params": {"repetitions": 1}})
        axes = {"temperature": [0.0, 40.0]}
        sequential = Study(spec, axes=axes).run("emulate")
        parallel = Study(spec, axes=axes).run("emulate", workers=2)
        assert parallel.rows == sequential.rows

    def test_workers_share_the_evaluator_cache(self):
        spec = ScenarioSpec(name="shared")
        axes = {"temperature": [-20.0, 0.0, 25.0, 50.0, 85.0]}
        result = Study(spec, axes=axes).run("report", workers=4)
        metadata = result.metadata
        assert metadata["evaluator_builds"] == 1
        assert metadata["evaluator_cache_hits"] == 4
        assert metadata["workers"] == 4

    def test_invalid_workers_rejected(self):
        study = Study(ScenarioSpec())
        for bad in (0, -2, 1.5, True, "many"):
            with pytest.raises(ConfigError, match="workers"):
                study.run("report", workers=bad)

    def test_single_worker_is_sequential(self):
        result = Study(ScenarioSpec()).run("report", workers=1)
        assert result.metadata["workers"] == 1


class TestProcessBackend:
    """Study.run(backend="process"): rows identical, spec shipped as JSON."""

    def test_default_backend_is_thread(self):
        result = Study(ScenarioSpec()).run("report")
        assert result.metadata["backend"] == "thread"

    @pytest.mark.parametrize("kind", ["balance", "optimize", "montecarlo"])
    def test_process_rows_match_sequential(self, kind):
        spec = ScenarioSpec(name="proc")
        axes = {"temperature": [-20.0, 25.0, 85.0]}
        sequential = Study(spec, axes=axes).run(kind)
        process = Study(spec, axes=axes).run(kind, workers=3, backend="process")
        assert process.rows == sequential.rows
        assert process.metadata["backend"] == "process"
        # Same columns in the same order: the exports must not care which
        # backend produced the rows.
        assert [list(row) for row in process.rows] == [
            list(row) for row in sequential.rows
        ]

    def test_process_emulate_matches_sequential(self):
        spec = ScenarioSpec(
            drive_cycle={"name": "urban", "params": {"repetitions": 1}},
            storage="supercapacitor",
        )
        axes = {"temperature": [0.0, 40.0]}
        sequential = Study(spec, axes=axes).run("emulate")
        process = Study(spec, axes=axes).run("emulate", workers=2, backend="process")
        assert process.rows == sequential.rows

    def test_process_backend_timing_metadata(self):
        spec = ScenarioSpec(name="proc-meta")
        axes = {"temperature": [0.0, 25.0]}
        metadata = Study(spec, axes=axes).run(
            "report", workers=2, backend="process"
        ).metadata
        assert metadata["workers"] == 2
        assert metadata["wall_time_s"] > 0.0
        assert len(metadata["row_wall_times_s"]) == 2
        assert all(elapsed > 0.0 for elapsed in metadata["row_wall_times_s"])
        # Evaluators are built inside the worker processes, not the parent.
        assert metadata["evaluator_builds"] == 0
        assert metadata["evaluator_cache_hits"] == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            Study(ScenarioSpec()).run("report", backend="fork-bomb")

    def test_process_workers_see_user_registrations(self):
        """Forked workers inherit register_*-ed components from the parent."""
        from repro.scenario.registry import SCAVENGERS
        from repro.scavenger import PiezoelectricScavenger

        @SCAVENGERS.register("test-study-proc-scavenger")
        def _scavenger(size_factor: float = 2.0):
            return PiezoelectricScavenger().scaled(size_factor)

        try:
            spec = ScenarioSpec(
                name="proc-registry", scavenger="test-study-proc-scavenger"
            )
            axes = {"temperature": [0.0, 25.0]}
            sequential = Study(spec, axes=axes).run("balance")
            process = Study(spec, axes=axes).run(
                "balance", workers=2, backend="process"
            )
            assert process.rows == sequential.rows
        finally:
            SCAVENGERS.unregister("test-study-proc-scavenger")

    def test_worker_components_memo_shares_evaluators(self):
        """Within one worker process, equal specs share one evaluator."""
        from repro.scenario.study import _WORKER_EVALUATORS, _worker_components

        _WORKER_EVALUATORS.clear()
        try:
            spec = ScenarioSpec(name="memo")
            first = _worker_components(spec)
            cold = _worker_components(spec.with_axis("temperature", 85.0))
            assert cold is first  # temperature is not part of the evaluator key
            assert len(_WORKER_EVALUATORS) == 1
            other = _worker_components(spec.with_axis("architecture", "optimized"))
            assert other is not first
            assert len(_WORKER_EVALUATORS) == 2
        finally:
            _WORKER_EVALUATORS.clear()

    def test_run_study_passes_the_backend_through(self):
        spec = ScenarioSpec(name="proc-conv")
        result = run_study(
            spec,
            axes={"temperature": [0.0, 25.0]},
            kind="report",
            workers=2,
            backend="process",
        )
        assert result.metadata["backend"] == "process"
        assert len(result) == 2


class TestTimingMetadata:
    def test_wall_time_and_per_row_timings_recorded(self, grid_study):
        result = grid_study.run("balance")
        metadata = result.metadata
        assert metadata["wall_time_s"] > 0.0
        assert len(metadata["row_wall_times_s"]) == len(result)
        assert all(elapsed > 0.0 for elapsed in metadata["row_wall_times_s"])
        # Sequentially, the per-row times cannot exceed the total wall time.
        assert sum(metadata["row_wall_times_s"]) <= metadata["wall_time_s"] * 1.5

    def test_timing_metadata_present_for_every_kind(self):
        spec = ScenarioSpec(drive_cycle={"name": "urban", "params": {"repetitions": 1}})
        for kind in STUDY_KINDS:
            metadata = run_study(spec, kind=kind).metadata
            assert metadata["kind"] == kind
            assert "wall_time_s" in metadata
            assert "row_wall_times_s" in metadata
            assert "workers" in metadata
