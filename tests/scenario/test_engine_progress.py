"""Engine observability hooks: progress events and cooperative stop."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.scenario.checkpoint import CheckpointStore
from repro.scenario.engine import ChunkedEngine


def _square(value: int) -> int:
    return value * value


class TestRunProgress:
    def test_sequential_item_events(self):
        events = []
        engine = ChunkedEngine()
        engine.run([1, 2, 3], _square, lambda i, r: None, progress=events.append)
        assert events == [
            {"event": "item", "items_done": 1, "failures": 0},
            {"event": "item", "items_done": 2, "failures": 0},
            {"event": "item", "items_done": 3, "failures": 0},
        ]

    def test_thread_item_events_are_ordered(self):
        events = []
        engine = ChunkedEngine(workers=4)
        engine.run(range(20), _square, lambda i, r: None, progress=events.append)
        assert [event["items_done"] for event in events] == list(range(1, 21))
        assert {event["event"] for event in events} == {"item"}

    def test_failures_counted_in_events(self):
        def kernel(value):
            if value == 1:
                raise ValueError("boom")
            return value

        events = []
        engine = ChunkedEngine(failure_mode="collect")
        report = engine.run([0, 1, 2], kernel, lambda i, r: None, progress=events.append)
        assert [event["failures"] for event in events] == [0, 1, 1]
        assert len(report.failures) == 1

    def test_progress_fires_after_sink(self):
        order = []
        engine = ChunkedEngine()
        engine.run(
            [7],
            _square,
            lambda i, r: order.append(("sink", i, r)),
            progress=lambda event: order.append(("progress", event["items_done"])),
        )
        assert order == [("sink", 0, 49), ("progress", 1)]

    def test_rejects_non_callable_progress(self):
        engine = ChunkedEngine()
        with pytest.raises(ConfigError, match="progress must be callable"):
            engine.run([1], _square, lambda i, r: None, progress="nope")


class TestRunChunksProgress:
    def test_chunk_events_with_global_counts(self):
        events = []
        engine = ChunkedEngine()
        engine.run_chunks(
            [[1, 2], [3]], _square, lambda i, r: None, progress=events.append
        )
        chunk_events = [event for event in events if event["event"] == "chunk"]
        assert chunk_events == [
            {
                "event": "chunk",
                "chunk": 0,
                "chunks_done": 1,
                "items_done": 2,
                "resumed": False,
                "failures": 0,
            },
            {
                "event": "chunk",
                "chunk": 1,
                "chunks_done": 2,
                "items_done": 3,
                "resumed": False,
                "failures": 0,
            },
        ]
        item_events = [event for event in events if event["event"] == "item"]
        assert [event["items_done"] for event in item_events] == [1, 2, 3]

    def test_replayed_chunks_emit_resumed_events(self, tmp_path):
        store = CheckpointStore(tmp_path, {"run": "progress-test"})
        engine = ChunkedEngine()
        engine.run_chunks([[1, 2], [3]], _square, lambda i, r: None, checkpoint=store)
        events = []
        replay_store = CheckpointStore(tmp_path, {"run": "progress-test"})
        engine.run_chunks(
            [[1, 2], [3]],
            _square,
            lambda i, r: None,
            checkpoint=replay_store,
            progress=events.append,
        )
        assert [event["resumed"] for event in events if event["event"] == "chunk"] == [
            True,
            True,
        ]
        # Replay streams journaled results without re-running items.
        assert all(event["event"] == "chunk" for event in events)


class TestShouldStop:
    def test_stop_before_first_chunk(self):
        ran = []
        engine = ChunkedEngine()
        report = engine.run_chunks(
            [[1], [2]],
            lambda item: ran.append(item),
            lambda i, r: None,
            should_stop=lambda: True,
        )
        assert ran == []
        assert report.stopped_early
        assert report.chunks == 0

    def test_stop_lands_on_a_chunk_boundary_and_journals(self, tmp_path):
        store = CheckpointStore(tmp_path, {"run": "stop-test"})
        calls = {"count": 0}

        def stop_after_one():
            calls["count"] += 1
            return calls["count"] > 1

        rows = []
        engine = ChunkedEngine()
        report = engine.run_chunks(
            [[1, 2], [3, 4], [5]],
            _square,
            lambda i, r: rows.append(r),
            checkpoint=store,
            should_stop=stop_after_one,
        )
        assert rows == [1, 4]
        assert report.stopped_early and report.chunks == 1
        assert store.completed_chunks == (0,)
        # Resuming replays the journaled chunk and finishes the rest.
        resumed_rows = []
        resume_store = CheckpointStore(tmp_path, {"run": "stop-test"})
        resumed = engine.run_chunks(
            [[1, 2], [3, 4], [5]],
            _square,
            lambda i, r: resumed_rows.append(r),
            checkpoint=resume_store,
        )
        assert resumed_rows == [1, 4, 9, 16, 25]
        assert resumed.resumed_chunks == 1 and not resumed.stopped_early

    def test_rejects_non_callable_should_stop(self):
        engine = ChunkedEngine()
        with pytest.raises(ConfigError, match="should_stop must be callable"):
            engine.run_chunks([[1]], _square, lambda i, r: None, should_stop="nope")
