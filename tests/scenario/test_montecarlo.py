"""Tests for the Monte-Carlo workload study kind and its sampling config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluator import EnergyEvaluator
from repro.errors import ConfigError
from repro.scenario.montecarlo import MonteCarloConfig
from repro.scenario.spec import ScenarioSpec
from repro.scenario.study import Study

RTOL = 1e-9


class TestMonteCarloConfig:
    def test_defaults_are_valid(self):
        config = MonteCarloConfig()
        assert config.samples >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"samples": 0},
            {"samples": 2.5},
            {"seed": -1},
            {"speed_rel_std": -0.1},
            {"temperature_std_c": -1.0},
            {"activity_range": (0.0, 1.0)},
            {"activity_range": (1.2, 0.8)},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MonteCarloConfig(**kwargs)

    def test_draws_are_deterministic_per_scenario(self, node):
        spec = ScenarioSpec(name="deterministic")
        config = MonteCarloConfig(samples=64)
        first = config.draw(node, spec.operating_point(), config.rng_for(spec.to_json()))
        second = config.draw(node, spec.operating_point(), config.rng_for(spec.to_json()))
        assert np.array_equal(first.conditions.speed_kmh, second.conditions.speed_kmh)
        assert np.array_equal(first.conditions.activity, second.conditions.activity)
        assert np.array_equal(first.patterns, second.patterns)

    def test_different_scenarios_draw_different_streams(self, node):
        config = MonteCarloConfig(samples=64)
        base = ScenarioSpec(name="one")
        other = ScenarioSpec(name="two")
        first = config.draw(node, base.operating_point(), config.rng_for(base.to_json()))
        second = config.draw(node, other.operating_point(), config.rng_for(other.to_json()))
        assert not np.array_equal(first.conditions.speed_kmh, second.conditions.speed_kmh)

    def test_draws_respect_model_ranges(self, node):
        spec = ScenarioSpec(name="ranges")
        config = MonteCarloConfig(samples=512, speed_rel_std=1.5, temperature_std_c=80.0)
        draws = config.draw(node, spec.operating_point(), config.rng_for(spec.to_json()))
        assert np.all(draws.conditions.speed_kmh > 0.0)
        assert np.all(draws.conditions.speed_kmh <= node.max_sustainable_speed_kmh())
        from repro.conditions.operating_point import TEMPERATURE_RANGE_C

        low_t, high_t = TEMPERATURE_RANGE_C
        assert np.all(draws.conditions.temperature_c >= low_t)
        assert np.all(draws.conditions.temperature_c <= high_t)
        low, high = config.activity_range
        assert np.all((draws.conditions.activity >= low) & (draws.conditions.activity <= high))
        assert draws.patterns.shape == (512, 3)


class TestMonteCarloKind:
    def test_rows_match_scalar_reference(self, database):
        """The montecarlo kind rides on the 1e-9-equivalent sweep path."""
        spec = ScenarioSpec(name="equivalence")
        config = MonteCarloConfig(samples=48, seed=13)
        study = Study(spec, montecarlo=config)
        result = study.run("montecarlo")
        row = result.rows[0]

        node = spec.build_node()
        evaluator = EnergyEvaluator(node, spec.build_database())
        draws = config.draw(node, spec.operating_point(), config.rng_for(spec.to_json()))
        batch = draws.conditions
        reference = np.empty(len(batch))
        for i in range(len(batch)):
            speed = float(batch.speed_kmh[i])
            point = (
                spec.operating_point()
                .at_speed(speed)
                .at_temperature(float(batch.temperature_c[i]))
            )
            schedule = node.schedule_for_pattern(
                speed,
                transmits=bool(draws.patterns[i, 0]),
                refreshes_slow=bool(draws.patterns[i, 1]),
                writes_nvm=bool(draws.patterns[i, 2]),
            )
            reference[i] = evaluator.schedule_report(
                schedule, point, activity_scale=float(batch.activity[i])
            ).total_energy_j
        assert row["samples"] == 48
        assert row["mean_uj_per_rev"] == pytest.approx(float(np.mean(reference)) * 1e6, rel=RTOL)
        assert row["p95_uj_per_rev"] == pytest.approx(
            float(np.percentile(reference, 95.0)) * 1e6, rel=RTOL
        )

    def test_same_seed_reproduces_rows(self):
        spec = ScenarioSpec(name="repro")
        axes = {"temperature": [0.0, 50.0]}
        config = MonteCarloConfig(samples=32, seed=21)
        first = Study(spec, axes=axes, montecarlo=config).run("montecarlo")
        second = Study(spec, axes=axes, montecarlo=config).run("montecarlo")
        assert first.rows == second.rows

    def test_different_seed_changes_rows(self):
        spec = ScenarioSpec(name="seeded")
        first = Study(spec, montecarlo=MonteCarloConfig(samples=32, seed=1)).run("montecarlo")
        second = Study(spec, montecarlo=MonteCarloConfig(samples=32, seed=2)).run("montecarlo")
        assert first.rows != second.rows

    def test_montecarlo_default_config(self):
        result = Study(ScenarioSpec(name="default")).run("montecarlo")
        assert len(result) == 1
        assert result.rows[0]["samples"] == MonteCarloConfig().samples

    def test_invalid_montecarlo_argument_rejected(self):
        with pytest.raises(ConfigError, match="MonteCarloConfig"):
            Study(ScenarioSpec(), montecarlo={"samples": 8})

    def test_workers_return_identical_rows(self):
        """The acceptance bar: parallel montecarlo == sequential montecarlo."""
        spec = ScenarioSpec(name="parallel")
        axes = {"temperature": [-20.0, 25.0, 85.0], "speed": [40.0, 100.0]}
        config = MonteCarloConfig(samples=64, seed=3)
        sequential = Study(spec, axes=axes, montecarlo=config).run("montecarlo")
        parallel = Study(spec, axes=axes, montecarlo=config).run("montecarlo", workers=4)
        assert sequential.rows == parallel.rows
        assert sequential.axes == parallel.axes
