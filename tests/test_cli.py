"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestArchitecturesCommand:
    def test_lists_the_catalogue(self, capsys):
        assert main(["architectures"]) == 0
        output = capsys.readouterr().out
        for name in ("legacy-tpms", "baseline", "optimized"):
            assert name in output


class TestBalanceCommand:
    def test_prints_curve_and_break_even(self, capsys):
        code = main(
            ["balance", "--speed-min", "10", "--speed-max", "150", "--speed-step", "10"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "speed_kmh" in output
        assert "break-even" in output

    def test_unknown_architecture_fails_cleanly(self, capsys):
        code = main(["balance", "--architecture", "does-not-exist"])
        assert code == 1
        assert "unknown architecture" in capsys.readouterr().err

    def test_larger_scavenger_reports_lower_break_even(self, capsys):
        main(["balance", "--scavenger-size", "1.0", "--speed-step", "10"])
        small = capsys.readouterr().out
        main(["balance", "--scavenger-size", "2.0", "--speed-step", "10"])
        large = capsys.readouterr().out

        def extract(text):
            for line in text.splitlines():
                if "break-even" in line and "km/h" in line:
                    return float(line.split(":")[1].split("km/h")[0])
            return None

        assert extract(large) < extract(small)


class TestTraceCommand:
    def test_prints_segments_and_statistics(self, capsys):
        code = main(["trace", "--speed", "60", "--window", "0.3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "transmit" in output
        assert "peak" in output


class TestOptimizeCommand:
    def test_prints_assignments_and_saving(self, capsys):
        code = main(["optimize", "--temperature", "85"])
        assert code == 0
        output = capsys.readouterr().out
        assert "technique" in output
        assert "% saving" in output


class TestEmulateCommand:
    def test_urban_cycle_summary(self, capsys):
        code = main(["emulate", "--cycle", "urban", "--architecture", "optimized"])
        assert code == 0
        output = capsys.readouterr().out
        assert "revolutions" in output
        assert "harvested_mj" in output


class TestReportCommand:
    def test_full_report_without_cycle(self, capsys):
        code = main(["report", "--architecture", "legacy-tpms"])
        assert code == 0
        output = capsys.readouterr().out
        assert "ENERGY ANALYSIS REPORT" in output
        assert "Step 5" in output

    def test_full_report_with_cycle(self, capsys):
        code = main(["report", "--cycle", "urban"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Step 6" in output


class TestArgumentParsing:
    def test_missing_subcommand_raises_system_exit(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_kind_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", "x.json", "--kind", "interpolate"])


class TestScenariosCommand:
    def test_lists_every_registry(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for name in (
            "baseline",
            "reference",
            "piezoelectric",
            "supercapacitor",
            "urban",
            "architecture",
            "drive_cycle",
        ):
            assert name in output

    def test_lists_grid_axes(self, capsys):
        main(["scenarios"])
        output = capsys.readouterr().out
        assert "grid axes" in output
        assert "temperature" in output

    def test_json_form_is_the_shared_listing_document(self, capsys):
        from repro.scenario.listing import scenario_listing

        assert main(["scenarios", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document == json.loads(json.dumps(scenario_listing()))
        assert {"components", "cycles", "axes", "study_kinds"} <= set(document)


class TestCyclesCommand:
    def test_lists_cycles_with_durations(self, capsys):
        assert main(["cycles"]) == 0
        output = capsys.readouterr().out
        for name in ("urban", "nedc", "highway", "constant", "ramp"):
            assert name in output
        assert "parametric" in output

    def test_json_form_matches_the_shared_rows(self, capsys):
        from repro.scenario.listing import cycle_rows

        assert main(["cycles", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows == json.loads(json.dumps(cycle_rows()))
        assert any(row["note"].startswith("parametric") for row in rows)


class TestServeCommand:
    def test_serve_subcommand_is_registered_with_defaults(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.backend == "thread"
        assert args.cache_size == 8
        assert args.job_workers == 1
        assert args.store_dir is None and args.checkpoint_dir is None


class TestRunCommand:
    @pytest.fixture
    def scenario_path(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-test",
                    "architecture": "optimized",
                    "environment": {"temperature_c": 25.0, "speed_kmh": 60.0},
                }
            )
        )
        return str(path)

    def test_flow_mode_prints_headlines(self, capsys, scenario_path):
        assert main(["run", "--scenario", scenario_path]) == 0
        output = capsys.readouterr().out
        assert "Per-block energy over one wheel round at 60 km/h" in output
        assert "Flow summary" in output
        assert "break_even_before_kmh" in output

    def test_grid_mode_runs_study(self, capsys, scenario_path):
        code = main(
            [
                "run",
                "--scenario",
                scenario_path,
                "--set",
                "temperature=-20,85",
                "--kind",
                "balance",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "break_even_kmh" in output
        assert "evaluator build(s)" in output

    def test_export_writes_rows(self, capsys, scenario_path, tmp_path):
        target = tmp_path / "rows.json"
        code = main(
            [
                "run",
                "--scenario",
                scenario_path,
                "--kind",
                "report",
                "--export",
                str(target),
            ]
        )
        assert code == 0
        assert json.loads(target.read_text())

    def test_montecarlo_kind_with_workers(self, capsys, scenario_path):
        code = main(
            [
                "run",
                "--scenario",
                scenario_path,
                "--kind",
                "montecarlo",
                "--mc-samples",
                "32",
                "--mc-seed",
                "7",
                "--workers",
                "2",
                "--set",
                "temperature=0,50",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean_uj_per_rev" in output
        assert "2 worker(s)" in output

    def test_process_backend_matches_thread_backend(self, capsys, scenario_path):
        arguments = [
            "run",
            "--scenario",
            scenario_path,
            "--kind",
            "report",
            "--set",
            "temperature=0,50",
            "--workers",
            "2",
        ]
        assert main(arguments + ["--backend", "thread"]) == 0
        thread_out = capsys.readouterr().out
        assert main(arguments + ["--backend", "process"]) == 0
        process_out = capsys.readouterr().out
        assert "process backend" in process_out
        # Identical result tables; only the backend/evaluator summary differs.
        def table(text):
            return text.split("\n\n")[0]

        assert table(process_out) == table(thread_out)

    def test_backend_requires_study_mode(self, capsys, scenario_path):
        code = main(["run", "--scenario", scenario_path, "--backend", "process"])
        assert code == 1
        assert "--backend requires study mode" in capsys.readouterr().err

    def test_process_backend_requires_multiple_workers(self, capsys, scenario_path):
        """--backend process must not silently run sequentially."""
        code = main(
            [
                "run",
                "--scenario",
                scenario_path,
                "--kind",
                "report",
                "--backend",
                "process",
            ]
        )
        assert code == 1
        assert "--workers greater than 1" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_argparse(self, scenario_path):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", scenario_path, "--backend", "rocket"])

    def test_montecarlo_runs_are_reproducible(self, capsys, scenario_path):
        arguments = [
            "run",
            "--scenario",
            scenario_path,
            "--kind",
            "montecarlo",
            "--mc-samples",
            "32",
            "--mc-seed",
            "5",
        ]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert main(arguments) == 0
        second = capsys.readouterr().out
        assert first == second


class TestErrorPaths:
    """Every CLI failure exits non-zero with a one-line message, no traceback."""

    def _assert_clean_failure(self, capsys, argv, fragment):
        code = main(argv)
        captured = capsys.readouterr()
        assert code == 1
        error_lines = [line for line in captured.err.splitlines() if line]
        assert len(error_lines) == 1
        assert error_lines[0].startswith("error: ")
        assert fragment in error_lines[0]
        assert "Traceback" not in captured.err

    def test_unknown_architecture(self, capsys):
        self._assert_clean_failure(
            capsys,
            ["balance", "--architecture", "does-not-exist"],
            "unknown architecture",
        )

    def test_unknown_cycle(self, capsys):
        self._assert_clean_failure(
            capsys, ["emulate", "--cycle", "lunar"], "unknown drive cycle"
        )

    def test_parametric_cycle_points_to_scenario_form(self, capsys):
        self._assert_clean_failure(
            capsys, ["emulate", "--cycle", "constant"], "needs parameters"
        )

    def test_unknown_report_cycle(self, capsys):
        self._assert_clean_failure(
            capsys, ["report", "--cycle", "lunar"], "unknown drive cycle"
        )

    def test_missing_scenario_file(self, capsys, tmp_path):
        self._assert_clean_failure(
            capsys,
            ["run", "--scenario", str(tmp_path / "missing.json")],
            "cannot read scenario file",
        )

    def test_invalid_scenario_json(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        self._assert_clean_failure(
            capsys, ["run", "--scenario", str(path)], "not valid JSON"
        )

    def test_unknown_scenario_field(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"architecture": "baseline", "wheelz": 4}))
        self._assert_clean_failure(
            capsys, ["run", "--scenario", str(path)], "unknown scenario field"
        )

    def test_unknown_scenario_architecture(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"architecture": "warp-drive"}))
        self._assert_clean_failure(
            capsys, ["run", "--scenario", str(path)], "unknown architecture"
        )

    @pytest.fixture
    def scenario_path(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"architecture": "baseline"}))
        return str(path)

    def test_malformed_set_missing_equals(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            ["run", "--scenario", scenario_path, "--set", "temperature"],
            "malformed --set",
        )

    def test_malformed_set_empty_values(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            ["run", "--scenario", scenario_path, "--set", "temperature=25,,85"],
            "malformed --set",
        )

    def test_unknown_set_axis(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            ["run", "--scenario", scenario_path, "--set", "humidity=10,20"],
            "unknown scenario axis",
        )

    def test_colliding_set_aliases(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            [
                "run",
                "--scenario",
                scenario_path,
                "--set",
                "temperature=10",
                "--set",
                "temperature_c=20",
            ],
            "both drive the scenario field",
        )

    def test_non_finite_set_value(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            ["run", "--scenario", scenario_path, "--set", "speed=inf,60"],
            "finite",
        )

    def test_duplicate_set_axis(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            [
                "run",
                "--scenario",
                scenario_path,
                "--set",
                "temperature=10",
                "--set",
                "temperature=20",
            ],
            "more than once",
        )

    def test_bad_export_extension(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            [
                "run",
                "--scenario",
                scenario_path,
                "--kind",
                "report",
                "--export",
                "rows.xlsx",
            ],
            "must end in .csv or .json",
        )

    def test_emulate_kind_without_cycle(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            ["run", "--scenario", scenario_path, "--kind", "emulate"],
            "drive_cycle",
        )

    def test_mc_flags_without_montecarlo_kind(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            [
                "run",
                "--scenario",
                scenario_path,
                "--kind",
                "report",
                "--mc-samples",
                "16",
            ],
            "--kind montecarlo",
        )

    def test_workers_without_study_mode(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            ["run", "--scenario", scenario_path, "--workers", "2"],
            "study mode",
        )

    def test_invalid_worker_count(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            [
                "run",
                "--scenario",
                scenario_path,
                "--kind",
                "report",
                "--workers",
                "0",
            ],
            "workers must be a positive integer",
        )


class TestFleetCommand:
    @pytest.fixture
    def scenario_path(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-fleet",
                    "drive_cycle": {"name": "urban", "params": {"repetitions": 1}},
                    "environment": {"temperature_c": 25.0, "speed_kmh": 60.0},
                }
            )
        )
        return str(path)

    @pytest.fixture
    def fleet_path(self, tmp_path, scenario_path):
        from repro.fleet import FleetSpec
        from repro.scenario.spec import load_scenario

        fleet = FleetSpec.from_base(load_scenario(scenario_path), vehicles=5, seed=2)
        return str(fleet.save(tmp_path / "fleet.json"))

    def test_scenario_mode_runs_default_population(self, capsys, scenario_path):
        code = main(["fleet", "--scenario", scenario_path, "--vehicles", "4", "--seed", "9"])
        assert code == 0
        output = capsys.readouterr().out
        assert "surviving_at_end_pct" in output
        assert "Fleet survival vs time" in output
        assert "4 vehicle(s)" in output
        assert "shared energy bin(s) swept once" in output

    def test_fleet_document_mode(self, capsys, fleet_path):
        assert main(["fleet", "--fleet", fleet_path]) == 0
        output = capsys.readouterr().out
        assert "5 vehicle(s)" in output

    def test_population_overrides_apply(self, capsys, fleet_path):
        assert main(["fleet", "--fleet", fleet_path, "--vehicles", "3"]) == 0
        assert "3 vehicle(s)" in capsys.readouterr().out

    def test_workers_match_sequential_output(self, capsys, scenario_path):
        args = ["fleet", "--scenario", scenario_path, "--vehicles", "6", "--seed", "4"]
        assert main(args) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--workers", "3"]) == 0
        parallel = capsys.readouterr().out
        # Identical aggregate tables; only the trailing timing line differs.
        table = lambda text: text.split("\n\n")[1]  # noqa: E731
        assert table(parallel) == table(sequential)

    def test_exports_write_files(self, capsys, scenario_path, tmp_path):
        summary = tmp_path / "summary.json"
        survival = tmp_path / "survival.csv"
        vehicles = tmp_path / "vehicles.csv"
        code = main(
            [
                "fleet",
                "--scenario",
                scenario_path,
                "--vehicles",
                "3",
                "--export",
                str(summary),
                "--export-survival",
                str(survival),
                "--export-vehicles",
                str(vehicles),
            ]
        )
        assert code == 0
        assert json.loads(summary.read_text())[0]["vehicles"] == 3
        assert survival.read_text().startswith("fleet,")
        assert len(vehicles.read_text().splitlines()) == 4

    def _assert_clean_failure(self, capsys, argv, fragment):
        assert main(argv) == 1
        captured = capsys.readouterr()
        assert fragment in captured.err
        assert captured.err.startswith("error:")

    def test_requires_exactly_one_source(self, capsys, scenario_path, fleet_path):
        self._assert_clean_failure(
            capsys, ["fleet"], "exactly one of --fleet or --scenario"
        )
        self._assert_clean_failure(
            capsys,
            ["fleet", "--fleet", fleet_path, "--scenario", scenario_path],
            "exactly one of --fleet or --scenario",
        )

    def test_process_backend_requires_workers(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            ["fleet", "--scenario", scenario_path, "--backend", "process"],
            "--backend process needs --workers",
        )

    def test_missing_fleet_file(self, capsys, tmp_path):
        self._assert_clean_failure(
            capsys,
            ["fleet", "--fleet", str(tmp_path / "absent.json")],
            "cannot read fleet file",
        )

    def test_scenario_without_cycle_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "no-cycle.json"
        path.write_text(json.dumps({"name": "no-cycle"}))
        self._assert_clean_failure(
            capsys,
            ["fleet", "--scenario", str(path)],
            "drive_cycle",
        )

    def test_bad_export_extension_fails_before_running(self, capsys, scenario_path):
        self._assert_clean_failure(
            capsys,
            ["fleet", "--scenario", scenario_path, "--export", "out.txt"],
            "must end in .csv or .json",
        )


class TestFleetResumeAndPackages:
    @pytest.fixture
    def scenario_path(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-resume",
                    "drive_cycle": {"name": "urban", "params": {"repetitions": 1}},
                }
            )
        )
        return str(path)

    def _fleet_args(self, scenario_path):
        return [
            "fleet",
            "--scenario",
            scenario_path,
            "--vehicles",
            "8",
            "--seed",
            "3",
            "--chunk-vehicles",
            "3",
        ]

    def test_checkpointed_resume_matches_fresh_export(self, capsys, scenario_path, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        code = main(
            self._fleet_args(scenario_path)
            + ["--checkpoint", ckpt, "--max-chunks", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "PARTIAL run: 2/3 chunk(s) done" in output

        resumed_path = tmp_path / "resumed.json"
        code = main(
            self._fleet_args(scenario_path)
            + ["--checkpoint", ckpt, "--export", str(resumed_path)]
        )
        assert code == 0
        assert "resumed 2 chunk(s) (6 vehicle(s))" in capsys.readouterr().out

        fresh_path = tmp_path / "fresh.json"
        assert main(self._fleet_args(scenario_path) + ["--export", str(fresh_path)]) == 0
        assert resumed_path.read_bytes() == fresh_path.read_bytes()

    def test_package_writes_and_validates(self, capsys, scenario_path, tmp_path):
        package = str(tmp_path / "pkg")
        code = main(
            self._fleet_args(scenario_path)
            + ["--package", package, "--kpi-floor", "surviving_at_end_pct=0"]
        )
        assert code == 0
        assert "wrote run package" in capsys.readouterr().out

        assert main(["validate-run", package]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_validate_run_fails_on_tampered_artifact(self, capsys, scenario_path, tmp_path):
        package = str(tmp_path / "pkg")
        assert main(self._fleet_args(scenario_path) + ["--package", package]) == 0
        capsys.readouterr()
        summary = tmp_path / "pkg" / "summary.json"
        summary.write_text(summary.read_text().replace("cli-resume", "doctored"))
        assert main(["validate-run", package]) == 1
        assert "digest mismatch" in capsys.readouterr().err

    def test_validate_run_fails_on_missing_artifact(self, capsys, scenario_path, tmp_path):
        package = str(tmp_path / "pkg")
        assert main(self._fleet_args(scenario_path) + ["--package", package]) == 0
        capsys.readouterr()
        (tmp_path / "pkg" / "survival.json").unlink()
        assert main(["validate-run", package]) == 1
        assert "missing from package" in capsys.readouterr().err

    def test_validate_run_fails_on_violated_floor(self, capsys, scenario_path, tmp_path):
        package = str(tmp_path / "pkg")
        assert (
            main(
                self._fleet_args(scenario_path)
                + ["--package", package, "--kpi-floor", "surviving_at_end_pct=0"]
            )
            == 0
        )
        capsys.readouterr()
        manifest_path = tmp_path / "pkg" / "package.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["floors"]["surviving_at_end_pct"] = 1000.0
        manifest_path.write_text(json.dumps(manifest))
        assert main(["validate-run", package]) == 1
        assert "KPI floor violated: surviving_at_end_pct" in capsys.readouterr().err

    def test_validate_run_fails_on_non_package_directory(self, capsys, tmp_path):
        assert main(["validate-run", str(tmp_path)]) == 1
        assert "not a run package" in capsys.readouterr().err

    def test_package_refused_for_partial_runs(self, capsys, scenario_path, tmp_path):
        code = main(
            self._fleet_args(scenario_path)
            + ["--max-chunks", "1", "--package", str(tmp_path / "pkg")]
        )
        assert code == 1
        assert "refusing to package a partial run" in capsys.readouterr().err

    def test_kpi_floor_requires_package(self, capsys, scenario_path):
        code = main(self._fleet_args(scenario_path) + ["--kpi-floor", "x=1"])
        assert code == 1
        assert "--kpi-floor requires --package" in capsys.readouterr().err

    def test_malformed_kpi_floor(self, capsys, scenario_path, tmp_path):
        code = main(
            self._fleet_args(scenario_path)
            + ["--package", str(tmp_path / "pkg"), "--kpi-floor", "justaname"]
        )
        assert code == 1
        assert "malformed --kpi-floor" in capsys.readouterr().err

    def test_retries_flag_reaches_the_runner(self, capsys, scenario_path):
        assert main(self._fleet_args(scenario_path) + ["--retries", "2"]) == 0
