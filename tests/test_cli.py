"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestArchitecturesCommand:
    def test_lists_the_catalogue(self, capsys):
        assert main(["architectures"]) == 0
        output = capsys.readouterr().out
        for name in ("legacy-tpms", "baseline", "optimized"):
            assert name in output


class TestBalanceCommand:
    def test_prints_curve_and_break_even(self, capsys):
        code = main(
            ["balance", "--speed-min", "10", "--speed-max", "150", "--speed-step", "10"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "speed_kmh" in output
        assert "break-even" in output

    def test_unknown_architecture_fails_cleanly(self, capsys):
        code = main(["balance", "--architecture", "does-not-exist"])
        assert code == 1
        assert "unknown architecture" in capsys.readouterr().err

    def test_larger_scavenger_reports_lower_break_even(self, capsys):
        main(["balance", "--scavenger-size", "1.0", "--speed-step", "10"])
        small = capsys.readouterr().out
        main(["balance", "--scavenger-size", "2.0", "--speed-step", "10"])
        large = capsys.readouterr().out

        def extract(text):
            for line in text.splitlines():
                if "break-even" in line and "km/h" in line:
                    return float(line.split(":")[1].split("km/h")[0])
            return None

        assert extract(large) < extract(small)


class TestTraceCommand:
    def test_prints_segments_and_statistics(self, capsys):
        code = main(["trace", "--speed", "60", "--window", "0.3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "transmit" in output
        assert "peak" in output


class TestOptimizeCommand:
    def test_prints_assignments_and_saving(self, capsys):
        code = main(["optimize", "--temperature", "85"])
        assert code == 0
        output = capsys.readouterr().out
        assert "technique" in output
        assert "% saving" in output


class TestEmulateCommand:
    def test_urban_cycle_summary(self, capsys):
        code = main(["emulate", "--cycle", "urban", "--architecture", "optimized"])
        assert code == 0
        output = capsys.readouterr().out
        assert "revolutions" in output
        assert "harvested_mj" in output


class TestReportCommand:
    def test_full_report_without_cycle(self, capsys):
        code = main(["report", "--architecture", "legacy-tpms"])
        assert code == 0
        output = capsys.readouterr().out
        assert "ENERGY ANALYSIS REPORT" in output
        assert "Step 5" in output

    def test_full_report_with_cycle(self, capsys):
        code = main(["report", "--cycle", "urban"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Step 6" in output


class TestArgumentParsing:
    def test_missing_subcommand_raises_system_exit(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_cycle_rejected(self):
        with pytest.raises(SystemExit):
            main(["emulate", "--cycle", "lunar"])
