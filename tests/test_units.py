"""Tests for unit conversions and quantity formatting."""

from __future__ import annotations

import math

import pytest

from repro import units


class TestSpeedConversions:
    def test_kmh_to_ms_known_value(self):
        assert units.kmh_to_ms(36.0) == pytest.approx(10.0)

    def test_ms_to_kmh_known_value(self):
        assert units.ms_to_kmh(10.0) == pytest.approx(36.0)

    def test_round_trip(self):
        assert units.ms_to_kmh(units.kmh_to_ms(123.4)) == pytest.approx(123.4)

    def test_zero_speed(self):
        assert units.kmh_to_ms(0.0) == 0.0
        assert units.ms_to_kmh(0.0) == 0.0


class TestAngularConversions:
    def test_rpm_to_rad_s(self):
        assert units.rpm_to_rad_s(60.0) == pytest.approx(2.0 * math.pi)

    def test_rad_s_to_rpm_round_trip(self):
        assert units.rad_s_to_rpm(units.rpm_to_rad_s(1234.0)) == pytest.approx(1234.0)

    def test_rev_per_s_to_rad_s(self):
        assert units.rev_per_s_to_rad_s(1.0) == pytest.approx(2.0 * math.pi)


class TestTemperatureConversions:
    def test_celsius_to_kelvin(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert units.celsius_to_kelvin(25.0) == pytest.approx(298.15)

    def test_kelvin_to_celsius_round_trip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(-40.0)) == pytest.approx(-40.0)


class TestRadioPower:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_ten_dbm_is_ten_milliwatt(self):
        assert units.dbm_to_watt(10.0) == pytest.approx(10e-3)

    def test_watt_to_dbm_round_trip(self):
        assert units.watt_to_dbm(units.dbm_to_watt(-7.5)) == pytest.approx(-7.5)

    def test_watt_to_dbm_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.watt_to_dbm(0.0)
        with pytest.raises(ValueError):
            units.watt_to_dbm(-1.0)


class TestQuantityFormatting:
    def test_microjoule(self):
        assert units.format_energy(2.3e-6) == "2.3 uJ"

    def test_milliwatt(self):
        assert units.format_power(7.8e-3) == "7.8 mW"

    def test_plain_unit(self):
        assert units.format_quantity(3.0, "V") == "3 V"

    def test_kilo_prefix(self):
        assert units.format_quantity(50e3, "Hz") == "50 kHz"

    def test_zero_has_no_prefix(self):
        assert units.format_energy(0.0) == "0 J"

    def test_non_finite_is_rendered(self):
        assert "inf" in units.format_power(float("inf"))

    def test_negative_value_keeps_sign(self):
        rendered = units.format_current(-3.2e-3)
        assert rendered.startswith("-3.2")
        assert rendered.endswith("mA")

    def test_nano_prefix(self):
        assert units.format_current(4.7e-9) == "4.7 nA"

    def test_digits_control(self):
        assert units.format_quantity(1.23456e-6, "J", digits=5) == "1.2346 uJ"
