"""Fault injection: SIGKILL a serving replica mid-job, survive via failover.

The full multi-replica resilience story in one test module: two real
``tpms-energy serve`` processes share a store directory and a checkpoint
root; a fleet job is submitted to replica A, which is SIGKILLed after it
journals its first chunk.  The replica-aware client fails over to replica
B, resubmits the content-addressed request, and replica B resumes from
the shared journal — and the bytes the client finally receives are
identical to an uninterrupted single-process run of the same request.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.fleet import FleetRunner, FleetSpec
from repro.scenario.spec import ScenarioSpec
from repro.serve import ServeClient, encode_document, fleet_result_document

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="SIGKILL-based fault injection"
)

FLEET_DOC = {
    "scenario": {
        "name": "replica-failover",
        "drive_cycle": {"name": "urban", "params": {"repetitions": 2}},
    },
    "vehicles": 24,
    "seed": 11,
    "chunk_vehicles": 3,
}


def _expected_bytes() -> bytes:
    """The uninterrupted run's result document, computed in this process."""
    fleet = FleetSpec.from_base(
        ScenarioSpec.from_dict(FLEET_DOC["scenario"])
    ).with_population(vehicles=24, seed=11, chunk_vehicles=3)
    # keep_vehicle_rows=False matches the serve request default.
    return encode_document(
        fleet_result_document(FleetRunner(fleet, keep_vehicle_rows=False).run())
    )


class _Replica:
    """One ``tpms-energy serve`` child process bound to an ephemeral port."""

    def __init__(self, store_dir: Path, checkpoint_dir: Path) -> None:
        source_root = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(source_root) + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--store-dir",
                str(store_dir),
                "--checkpoint-dir",
                str(checkpoint_dir),
                "--job-workers",
                "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.port = self._parse_banner()

    def _parse_banner(self) -> int:
        # The CLI prints the bound endpoint from the ready callback, so
        # ``--port 0`` still announces the real kernel-assigned port.
        lines = []
        while True:
            line = self.process.stdout.readline()
            if not line:
                raise AssertionError(
                    f"replica exited before binding; output:\n{''.join(lines)}"
                )
            lines.append(line)
            if "serving on http://" in line:
                return int(line.split("serving on http://", 1)[1].split()[0].rsplit(":", 1)[1])

    @property
    def pid(self) -> int:
        return self.process.pid

    def kill_hard(self) -> None:
        os.kill(self.process.pid, signal.SIGKILL)
        self.process.wait(timeout=30)

    def close(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)
        self.process.stdout.close()


@pytest.fixture
def replicas(tmp_path):
    store_dir = tmp_path / "store"
    checkpoint_dir = tmp_path / "ckpt"
    pair = [_Replica(store_dir, checkpoint_dir) for _ in range(2)]
    yield pair
    for replica in pair:
        replica.close()


def test_replica_kill_mid_job_fails_over_resumes_and_matches_bytes(replicas, tmp_path):
    alpha, beta = replicas
    client = ServeClient(
        endpoints=[f"127.0.0.1:{alpha.port}", f"127.0.0.1:{beta.port}"],
        retries=3,
        timeout=30,
    )
    assert client.health()["pid"] == alpha.pid  # replica A is serving

    # Submit to A and wait until it has journaled at least one chunk, so
    # the kill provably lands mid-job with resumable work on disk.
    job = client.submit_fleet(FLEET_DOC)
    deadline = time.monotonic() + 120
    document = job
    while document["progress"]["chunks_done"] < 1:
        assert time.monotonic() < deadline, "replica A never completed a chunk"
        assert document["state"] != "failed", document
        document = client.job(job["id"], wait=5.0, version=document["version"])

    alpha.kill_hard()
    journals = list((tmp_path / "ckpt").glob("*/manifest.json"))
    assert journals, "no checkpoint journal survived the kill"

    # The resubmitted request rides failover to B, resumes from the shared
    # journal, and completes — not partial, byte-identical to an
    # uninterrupted single-process run.
    final, payload = client.run_fleet(FLEET_DOC, timeout=300)
    assert final["state"] == "done" and not final["partial"]
    assert payload == _expected_bytes()
    health = client.health()
    assert health["pid"] == beta.pid  # the answer came from replica B
    # B's run went through the shared store; a re-submission replays it.
    assert health["store"]["entries"] >= 1
    replay, replay_bytes = client.run_fleet(FLEET_DOC, timeout=60)
    assert replay["store_hit"] and replay_bytes == payload
