"""Replica-aware client: typed errors, endpoint failover, backoff schedules."""

from __future__ import annotations

import itertools
import socket

import pytest

from repro.errors import ConfigError, ServeConnectionError, ServeError, ServeHTTPError
from repro.serve import JobManager, ServeClient, ServeServer
from repro.serve.client import _backoff_schedule, _parse_endpoint

STUDY_DOC = {
    "scenario": {"name": "failover-study", "architecture": "baseline"},
    "axes": {"temperature": [25.0]},
}


@pytest.fixture
def server():
    server = ServeServer(JobManager(evaluator_capacity=4), port=0).start()
    yield server
    server.stop()


def _dead_port() -> int:
    """A port nothing listens on (bound then closed, so it's refused fast)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestEndpointParsing:
    def test_string_and_tuple_forms(self):
        assert _parse_endpoint("localhost:8123") == ("localhost", 8123)
        assert _parse_endpoint(("10.0.0.1", 80)) == ("10.0.0.1", 80)

    @pytest.mark.parametrize("bad", ["just-a-host", ":8000", "host:notaport"])
    def test_malformed_strings_are_config_errors(self, bad):
        with pytest.raises(ConfigError, match="endpoint"):
            _parse_endpoint(bad)

    def test_malformed_pairs_are_config_errors(self):
        with pytest.raises(ConfigError, match="endpoint"):
            _parse_endpoint(("host", "8000"))
        with pytest.raises(ConfigError, match="endpoint"):
            _parse_endpoint(42)

    def test_client_rejects_empty_endpoint_list(self):
        with pytest.raises(ConfigError, match="at least one replica"):
            ServeClient(endpoints=[])

    def test_client_rejects_bad_retries(self):
        with pytest.raises(ConfigError, match="retries"):
            ServeClient(retries=-1)


class TestBackoffSchedule:
    def test_deterministic_doubling_capped(self):
        delays = list(itertools.islice(_backoff_schedule(), 8))
        assert delays == [0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0, 1.0]

    def test_custom_initial_and_cap(self):
        delays = list(itertools.islice(_backoff_schedule(0.5, 2.0), 4))
        assert delays == [0.5, 1.0, 2.0, 2.0]


class TestErrorTaxonomy:
    def test_unreachable_replicas_raise_connection_error(self):
        client = ServeClient(
            endpoints=[f"127.0.0.1:{_dead_port()}", f"127.0.0.1:{_dead_port()}"],
            retries=1,
            backoff_s=0.001,
            timeout=2,
        )
        with pytest.raises(ServeConnectionError, match="2 endpoint"):
            client.health()

    def test_connection_error_is_a_serve_error(self):
        assert issubclass(ServeConnectionError, ServeError)
        assert issubclass(ServeHTTPError, ServeError)

    def test_http_error_carries_status_and_body(self, server):
        client = ServeClient(port=server.port)
        with pytest.raises(ServeHTTPError) as caught:
            client.submit_study({"bogus": 1})
        assert caught.value.status == 400
        assert b"unknown fields" in caught.value.body

    def test_missing_result_is_a_404_http_error(self, server):
        client = ServeClient(port=server.port)
        with pytest.raises(ServeHTTPError) as caught:
            client.result_bytes("job-000042-deadbeef")
        assert caught.value.status == 404


class TestFailover:
    def test_dead_endpoint_fails_over_to_live_replica(self, server):
        client = ServeClient(
            endpoints=[f"127.0.0.1:{_dead_port()}", f"127.0.0.1:{server.port}"],
            retries=0,
            timeout=10,
        )
        assert client.health()["status"] == "ok"
        # The answering replica became preferred: the dead one is skipped.
        assert client.preferred_endpoint == ("127.0.0.1", server.port)

    def test_preferred_replica_sticks_across_requests(self, server):
        client = ServeClient(
            endpoints=[f"127.0.0.1:{_dead_port()}", f"127.0.0.1:{server.port}"],
            retries=0,
            timeout=10,
        )
        client.health()
        client.health()
        assert client.preferred_endpoint == ("127.0.0.1", server.port)

    def test_run_study_through_a_half_dead_pool(self, server):
        client = ServeClient(
            endpoints=[f"127.0.0.1:{_dead_port()}", f"127.0.0.1:{server.port}"],
            retries=1,
            backoff_s=0.001,
            timeout=30,
        )
        final, payload = client.run_study(STUDY_DOC, timeout=120)
        assert final["state"] == "done"
        assert payload.startswith(b"{")


class TestWaitFallback:
    def test_wait_backs_off_without_server_versions(self, server, monkeypatch):
        # Strip the version field to emulate an older server; wait() must
        # fall back to the exponential-backoff polling path and still finish.
        client = ServeClient(port=server.port)
        real_job = client.job
        sleeps = []

        def versionless_job(job_id, wait=None, version=None):
            assert wait is None and version is None  # long-poll never used
            document = real_job(job_id)
            document.pop("version", None)
            return document

        monkeypatch.setattr(client, "job", versionless_job)
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda delay: sleeps.append(delay)
        )
        submitted = client.submit_study(STUDY_DOC)
        final = client.wait(submitted["id"], timeout=120, poll_s=0.02)
        assert final["state"] == "done"
        if sleeps:  # the tiny study may finish before the first poll
            capped = [min(0.02 * 2**index, 1.0) for index in range(len(sleeps))]
            assert [round(delay, 6) for delay in sleeps] == capped
