"""Concurrent studies sharing one evaluator LRU and the census-timing cache.

The serving layer runs many ``Study.run`` calls at once — from the job
manager's worker threads and, transitively, from each study's own engine
pool.  These tests hammer exactly that sharing surface: N threads, one
:class:`~repro.serve.EvaluatorLRU`, the module-level census-timing cache
in :mod:`repro.core.evaluator` — asserting the rows stay identical to a
sequential run (values, order, key order) and that nothing deadlocks
(every join carries a timeout and is checked).
"""

from __future__ import annotations

import threading

from repro.scenario.spec import ScenarioSpec
from repro.scenario.study import Study
from repro.serve import EvaluatorLRU

THREADS = 10

SPEC = ScenarioSpec(name="hammer", architecture="baseline")
AXES = {"temperature": [-20.0, 0.0, 25.0, 85.0]}


def _sequential_rows(kind="balance"):
    return Study(SPEC, axes=AXES).run(kind).as_rows()


class TestConcurrentStudies:
    def test_ten_threads_sharing_one_lru_match_sequential_rows(self):
        expected = _sequential_rows()
        cache = EvaluatorLRU(capacity=4)
        results: list = [None] * THREADS
        errors: list = []

        def worker(slot: int) -> None:
            try:
                study = Study(SPEC, axes=AXES, evaluator_cache=cache)
                results[slot] = study.run("balance", workers=2).as_rows()
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads), "deadlocked threads"
        assert not errors, errors
        for rows in results:
            assert rows == expected
            assert [list(row) for row in rows] == [list(row) for row in expected]

    def test_shared_group_builds_exactly_once_across_threads(self):
        # Every grid point of every thread shares one evaluator group key;
        # single-flight means ten concurrent studies pay ONE build.
        cache = EvaluatorLRU(capacity=4)
        done = []

        def worker() -> None:
            study = Study(SPEC, axes=AXES, evaluator_cache=cache)
            study.run("balance")
            done.append(study)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads), "deadlocked threads"
        assert len(done) == THREADS
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == THREADS * len(AXES["temperature"]) - 1
        assert sum(study.evaluator_builds for study in done) == 1

    def test_mixed_kinds_share_the_cache_without_interference(self):
        expected_balance = _sequential_rows("balance")
        expected_report = _sequential_rows("report")
        cache = EvaluatorLRU(capacity=4)
        results: dict[int, list] = {}
        lock = threading.Lock()

        def worker(slot: int) -> None:
            kind = "balance" if slot % 2 == 0 else "report"
            rows = Study(SPEC, axes=AXES, evaluator_cache=cache).run(kind).as_rows()
            with lock:
                results[slot] = rows

        threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads), "deadlocked threads"
        for slot, rows in results.items():
            assert rows == (expected_balance if slot % 2 == 0 else expected_report)
