"""ResultStore: content addressing, atomic persistence, byte fidelity."""

from __future__ import annotations

import pytest

from repro.digest import canonical_digest
from repro.errors import ConfigError
from repro.serve import ResultStore


class TestKeying:
    def test_key_digest_is_the_shared_canonical_digest(self):
        document = {"kind": "study", "nested": {"b": 2, "a": 1}}
        assert ResultStore.key_digest(document) == canonical_digest(document)

    def test_key_order_does_not_change_the_digest(self):
        assert ResultStore.key_digest({"a": 1, "b": 2}) == ResultStore.key_digest(
            {"b": 2, "a": 1}
        )

    def test_undigestable_key_is_a_config_error(self):
        with pytest.raises(ConfigError, match="not canonical JSON"):
            ResultStore.key_digest({"bad": float("inf")})


class TestInMemory:
    def test_round_trip_and_counters(self):
        store = ResultStore()
        digest = store.key_digest({"k": 1})
        assert store.get(digest) is None
        store.put(digest, b'{"rows":[]}\n')
        assert store.get(digest) == b'{"rows":[]}\n'
        assert store.stats() == {
            "entries": 1,
            "persistent": False,
            "hits": 1,
            "misses": 1,
            "writes": 1,
        }

    def test_put_is_idempotent_first_write_wins(self):
        store = ResultStore()
        store.put("d" * 64, b"first")
        store.put("d" * 64, b"second")
        assert store.get("d" * 64) == b"first"
        assert store.stats()["writes"] == 1

    def test_rejects_non_bytes_payload(self):
        with pytest.raises(ConfigError, match="must be bytes"):
            ResultStore().put("d" * 64, "text")


class TestPersistent:
    def test_entries_survive_a_new_store_instance(self, tmp_path):
        digest = ResultStore.key_digest({"k": 1})
        first = ResultStore(tmp_path / "store")
        first.put(digest, b"payload-bytes")
        reloaded = ResultStore(tmp_path / "store")
        assert digest in reloaded
        assert reloaded.get(digest) == b"payload-bytes"
        assert len(reloaded) == 1

    def test_files_are_named_by_digest_with_no_tmp_leftovers(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = store.key_digest({"k": 2})
        store.put(digest, b"x")
        assert [path.name for path in tmp_path.iterdir()] == [f"{digest}.json"]
        assert (tmp_path / f"{digest}.json").read_bytes() == b"x"

    def test_disk_hit_counts_as_hit(self, tmp_path):
        digest = ResultStore.key_digest({"k": 3})
        ResultStore(tmp_path).put(digest, b"y")
        store = ResultStore(tmp_path)
        assert store.get(digest) == b"y"
        assert store.stats()["hits"] == 1 and store.stats()["misses"] == 0
