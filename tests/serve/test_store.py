"""ResultStore: content addressing, atomic persistence, budgets, byte fidelity."""

from __future__ import annotations

import pytest

from repro.digest import canonical_digest
from repro.errors import ConfigError
from repro.serve import ResultStore, StoreBudget


def _digest(label: str) -> str:
    return ResultStore.key_digest({"label": label})


class TestKeying:
    def test_key_digest_is_the_shared_canonical_digest(self):
        document = {"kind": "study", "nested": {"b": 2, "a": 1}}
        assert ResultStore.key_digest(document) == canonical_digest(document)

    def test_key_order_does_not_change_the_digest(self):
        assert ResultStore.key_digest({"a": 1, "b": 2}) == ResultStore.key_digest(
            {"b": 2, "a": 1}
        )

    def test_undigestable_key_is_a_config_error(self):
        with pytest.raises(ConfigError, match="not canonical JSON"):
            ResultStore.key_digest({"bad": float("inf")})


class TestBudget:
    def test_needs_at_least_one_cap(self):
        with pytest.raises(ConfigError, match="max_entries and/or max_bytes"):
            StoreBudget()

    @pytest.mark.parametrize("kwargs", [{"max_entries": 0}, {"max_bytes": -5}])
    def test_caps_must_be_positive(self, kwargs):
        with pytest.raises(ConfigError, match="positive integer"):
            StoreBudget(**kwargs)

    def test_from_cli_converts_megabytes(self):
        budget = StoreBudget.from_cli(2.0, 10)
        assert budget == StoreBudget(max_entries=10, max_bytes=2 * 1024 * 1024)
        assert StoreBudget.from_cli(None, None) is None

    def test_exceeded_and_admits(self):
        budget = StoreBudget(max_entries=2, max_bytes=100)
        assert not budget.exceeded(2, 100)
        assert budget.exceeded(3, 10)
        assert budget.exceeded(1, 101)
        assert budget.admits(100) and not budget.admits(101)


class TestInMemory:
    def test_round_trip_and_counters(self):
        store = ResultStore()
        digest = store.key_digest({"k": 1})
        assert store.get(digest) is None
        store.put(digest, b'{"rows":[]}\n')
        assert store.get(digest) == b'{"rows":[]}\n'
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == len(b'{"rows":[]}\n')
        assert stats["persistent"] is False
        assert stats["budget"] is None
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["writes"] == 1
        assert stats["evictions"] == 0 and stats["evicted_bytes"] == 0
        assert stats["oversize_rejects"] == 0

    def test_put_is_idempotent_first_write_wins(self):
        store = ResultStore()
        assert store.put("d" * 64, b"first") is True
        assert store.put("d" * 64, b"second") is False
        assert store.get("d" * 64) == b"first"
        assert store.stats()["writes"] == 1

    def test_rejects_non_bytes_payload(self):
        with pytest.raises(ConfigError, match="must be bytes"):
            ResultStore().put("d" * 64, "text")

    def test_entry_budget_evicts_least_recently_used(self):
        store = ResultStore(budget=StoreBudget(max_entries=2))
        store.put(_digest("a"), b"aa")
        store.put(_digest("b"), b"bb")
        assert store.get(_digest("a")) == b"aa"  # refresh a's recency
        store.put(_digest("c"), b"cc")
        assert store.get(_digest("b")) is None  # b was the LRU victim
        assert store.get(_digest("a")) == b"aa"
        assert store.get(_digest("c")) == b"cc"
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1 and stats["evicted_bytes"] == 2

    def test_oversize_payload_is_rejected_not_evicting(self):
        store = ResultStore(budget=StoreBudget(max_bytes=4))
        store.put(_digest("small"), b"ok")
        assert store.put(_digest("big"), b"too-large") is False
        assert store.get(_digest("small")) == b"ok"
        assert store.stats()["oversize_rejects"] == 1


class TestPersistent:
    def test_entries_survive_a_new_store_instance(self, tmp_path):
        digest = ResultStore.key_digest({"k": 1})
        first = ResultStore(tmp_path / "store")
        first.put(digest, b"payload-bytes")
        reloaded = ResultStore(tmp_path / "store")
        assert digest in reloaded
        assert reloaded.get(digest) == b"payload-bytes"
        assert len(reloaded) == 1

    def test_files_are_named_by_digest_with_no_tmp_leftovers(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = store.key_digest({"k": 2})
        store.put(digest, b"x")
        names = sorted(path.name for path in tmp_path.iterdir())
        assert names == sorted([".lock", "index.json", f"{digest}.json"])
        assert (tmp_path / f"{digest}.json").read_bytes() == b"x"

    def test_disk_hit_counts_as_hit(self, tmp_path):
        digest = ResultStore.key_digest({"k": 3})
        ResultStore(tmp_path).put(digest, b"y")
        store = ResultStore(tmp_path)
        assert store.get(digest) == b"y"
        assert store.stats()["hits"] == 1 and store.stats()["misses"] == 0

    def test_adopts_a_legacy_directory_without_an_index(self, tmp_path):
        # Pre-budget store layouts had entry files only; the index is
        # rebuilt from the directory scan on first touch.
        digest = _digest("legacy")
        (tmp_path / f"{digest}.json").write_bytes(b"legacy-bytes")
        store = ResultStore(tmp_path)
        assert store.get(digest) == b"legacy-bytes"
        assert len(store) == 1

    def test_two_instances_on_one_directory_see_each_other(self, tmp_path):
        alpha = ResultStore(tmp_path)
        beta = ResultStore(tmp_path)
        digest = _digest("shared")
        assert alpha.put(digest, b"shared-bytes") is True
        assert beta.get(digest) == b"shared-bytes"
        assert beta.put(digest, b"other-bytes") is False  # first write won
        assert alpha.get(digest) == b"shared-bytes"

    def test_entry_budget_evicts_on_disk_lru(self, tmp_path):
        store = ResultStore(tmp_path, budget=StoreBudget(max_entries=2))
        store.put(_digest("a"), b"aa")
        store.put(_digest("b"), b"bb")
        # A disk hit (cold instance) refreshes a's recency in the shared
        # index; warm in-process hits deliberately don't.
        assert ResultStore(tmp_path).get(_digest("a")) == b"aa"
        store.put(_digest("c"), b"cc")
        assert not (tmp_path / f"{_digest('b')}.json").exists()
        assert (tmp_path / f"{_digest('a')}.json").exists()
        assert (tmp_path / f"{_digest('c')}.json").exists()
        assert store.stats()["entries"] == 2

    def test_byte_budget_evicts_down(self, tmp_path):
        store = ResultStore(tmp_path, budget=StoreBudget(max_bytes=6))
        store.put(_digest("a"), b"aaa")
        store.put(_digest("b"), b"bbb")
        store.put(_digest("c"), b"ccc")
        stats = store.stats()
        assert stats["bytes"] <= 6
        assert stats["evictions"] >= 1

    def test_reopening_with_a_smaller_budget_evicts_down(self, tmp_path):
        unbounded = ResultStore(tmp_path)
        for label in ("a", "b", "c", "d"):
            unbounded.put(_digest(label), label.encode())
        shrunk = ResultStore(tmp_path, budget=StoreBudget(max_entries=2))
        assert len(shrunk) == 2
        assert shrunk.stats()["evictions"] == 2

    def test_eviction_in_one_process_is_seen_by_another(self, tmp_path):
        writer = ResultStore(tmp_path, budget=StoreBudget(max_entries=1))
        reader = ResultStore(tmp_path, budget=StoreBudget(max_entries=1))
        writer.put(_digest("first"), b"one")
        writer.put(_digest("second"), b"two")
        assert reader.get(_digest("second")) == b"two"
        assert reader.stats()["entries"] == 1
