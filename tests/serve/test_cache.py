"""EvaluatorLRU: bounded, lock-protected, single-flight, counter-instrumented."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.serve import EvaluatorLRU


class TestValidation:
    @pytest.mark.parametrize("capacity", [0, -1, 1.5, "4", True])
    def test_rejects_bad_capacity(self, capacity):
        with pytest.raises(ConfigError, match="capacity"):
            EvaluatorLRU(capacity=capacity)

    def test_rejects_non_callable_builder(self):
        with pytest.raises(ConfigError, match="builder must be callable"):
            EvaluatorLRU().get("k", "not-a-builder")


class TestLRUSemantics:
    def test_miss_builds_and_hit_returns_same_object(self):
        cache = EvaluatorLRU(capacity=2)
        value = cache.get("a", lambda: object())
        assert cache.get("a", lambda: object()) is value
        stats = cache.stats()
        build_total = stats.pop("build_wall_time_s")
        build_last = stats.pop("last_build_wall_time_s")
        assert stats == {
            "capacity": 2,
            "size": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }
        assert build_total >= 0.0
        assert build_total == build_last  # exactly one build ran

    def test_capacity_evicts_least_recently_used(self):
        cache = EvaluatorLRU(capacity=2)
        cache.get("a", lambda: "A")
        cache.get("b", lambda: "B")
        cache.get("a", lambda: "A")  # refresh 'a'; 'b' is now LRU
        cache.get("c", lambda: "C")  # evicts 'b'
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats()["evictions"] == 1
        rebuilt = []
        cache.get("b", lambda: rebuilt.append(1) or "B2")
        assert rebuilt == [1]

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = EvaluatorLRU(capacity=4)
        cache.get("a", lambda: "A")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1

    def test_builder_exception_leaves_key_absent(self):
        cache = EvaluatorLRU(capacity=4)

        def boom():
            raise ValueError("build failed")

        with pytest.raises(ValueError, match="build failed"):
            cache.get("a", boom)
        assert "a" not in cache
        # The failure is not sticky: the next call retries the build.
        assert cache.get("a", lambda: "ok") == "ok"


class TestBuildTiming:
    def test_wall_time_accumulates_across_builds(self):
        cache = EvaluatorLRU(capacity=4)

        def slow():
            time.sleep(0.01)
            return "built"

        cache.get("a", slow)
        after_first = cache.stats()
        assert after_first["build_wall_time_s"] >= 0.01
        assert after_first["last_build_wall_time_s"] >= 0.01

        cache.get("b", lambda: "fast")
        after_second = cache.stats()
        # Total keeps growing; "last" tracks the most recent build only.
        assert after_second["build_wall_time_s"] > after_first["build_wall_time_s"]
        assert after_second["last_build_wall_time_s"] < after_first["last_build_wall_time_s"]

    def test_hits_and_failed_builds_do_not_count(self):
        cache = EvaluatorLRU(capacity=4)
        cache.get("a", lambda: "A")
        baseline = cache.stats()["build_wall_time_s"]
        cache.get("a", lambda: "A")  # hit: no build
        assert cache.stats()["build_wall_time_s"] == baseline

        def boom():
            time.sleep(0.01)
            raise ValueError("build failed")

        with pytest.raises(ValueError, match="build failed"):
            cache.get("b", boom)
        # Only successful builds count toward the wall-time signal.
        assert cache.stats()["build_wall_time_s"] == baseline


class TestSingleFlight:
    def test_concurrent_misses_build_once(self):
        cache = EvaluatorLRU(capacity=4)
        builds = []
        gate = threading.Event()

        def builder():
            builds.append(threading.get_ident())
            gate.wait(timeout=10)
            return "value"

        results = []

        def worker():
            results.append(cache.get("shared", builder))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        # All eight threads are now either building or waiting; release.
        gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert len(builds) == 1
        assert results == ["value"] * 8
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 7

    def test_builds_of_different_keys_run_in_parallel(self):
        cache = EvaluatorLRU(capacity=4)
        barrier = threading.Barrier(2, timeout=10)

        def builder(tag):
            # Both builders must be inside their build at once: if the map
            # lock were held while building, this barrier would deadlock.
            def build():
                barrier.wait()
                return tag

            return build

        results = {}
        threads = [
            threading.Thread(target=lambda k=key: results.update({k: cache.get(k, builder(k))}))
            for key in ("x", "y")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert results == {"x": "x", "y": "y"}

    def test_builder_exception_propagates_to_waiters(self):
        cache = EvaluatorLRU(capacity=4)
        entered = threading.Event()
        release = threading.Event()

        def boom():
            entered.set()
            release.wait(timeout=10)
            raise RuntimeError("shared failure")

        errors = []

        def leader():
            try:
                cache.get("k", boom)
            except RuntimeError as error:
                errors.append(str(error))

        def follower():
            entered.wait(timeout=10)
            try:
                cache.get("k", boom)
            except RuntimeError as error:
                errors.append(str(error))

        threads = [threading.Thread(target=leader), threading.Thread(target=follower)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=10)
        # Give the follower a moment to enqueue behind the in-flight build,
        # then let the leader fail.
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert errors.count("shared failure") >= 1 and len(errors) == 2
