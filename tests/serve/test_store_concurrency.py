"""Multi-process writers on one store directory: the cross-replica contract.

These tests fork real processes (the same isolation serve replicas have)
against a single store directory and assert the three properties the
serving layer leans on:

* first write wins — exactly one process stores each digest;
* no torn reads — a ``get`` returns the exact expected bytes or ``None``,
  never a prefix or a mix;
* the budget holds — no process ever observes the shared index over its
  entry/byte caps, even mid-churn.
"""

from __future__ import annotations

import multiprocessing
import sys

import pytest

from repro.serve import ResultStore, StoreBudget

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="fork-based multi-process store test"
)

_PROCESSES = 4
_DIGESTS = 24


def _digest(label: object) -> str:
    return ResultStore.key_digest({"label": str(label)})


def _payload(digest: str) -> bytes:
    # Deterministic payload per digest so any reader can verify the bytes.
    return f'{{"digest":"{digest}","pad":"{"x" * 64}"}}\n'.encode()


def _race_writer(directory, worker, queue):
    store = ResultStore(directory)
    torn = []
    for item in range(_DIGESTS):
        digest = _digest(item)
        store.put(digest, _payload(digest))
        found = store.get(digest)
        if found is not None and found != _payload(digest):
            torn.append(digest)
    queue.put((worker, store.stats()["writes"], torn))


def _churn_writer(directory, worker, queue):
    budget = StoreBudget(max_entries=6, max_bytes=6 * 200)
    store = ResultStore(directory, budget=budget)
    torn = []
    max_entries = 0
    max_bytes = 0
    for item in range(_DIGESTS):
        digest = _digest((worker, item))
        store.put(digest, _payload(digest))
        # Read back a digest some *other* worker may be writing/evicting.
        other = _digest(((worker + 1) % _PROCESSES, item))
        found = store.get(other)
        if found is not None and found != _payload(other):
            torn.append(other)
        stats = store.stats()
        max_entries = max(max_entries, stats["entries"])
        max_bytes = max(max_bytes, stats["bytes"])
    queue.put((worker, max_entries, max_bytes, torn))


def _run_workers(target, directory):
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    workers = [
        context.Process(target=target, args=(directory, worker, queue))
        for worker in range(_PROCESSES)
    ]
    for process in workers:
        process.start()
    results = [queue.get(timeout=60) for _ in workers]
    for process in workers:
        process.join(timeout=60)
        assert process.exitcode == 0
    return results


def test_first_write_wins_across_processes(tmp_path):
    results = _run_workers(_race_writer, tmp_path / "store")
    assert len(results) == _PROCESSES
    for _worker, _writes, torn in results:
        assert torn == []
    # Every digest was stored by exactly one process.
    assert sum(writes for _, writes, _ in results) == _DIGESTS
    survivor = ResultStore(tmp_path / "store")
    assert len(survivor) == _DIGESTS
    for item in range(_DIGESTS):
        digest = _digest(item)
        assert survivor.get(digest) == _payload(digest)


def test_budget_holds_under_concurrent_churn(tmp_path):
    directory = tmp_path / "store"
    results = _run_workers(_churn_writer, directory)
    assert len(results) == _PROCESSES
    for _worker, max_entries, max_bytes, torn in results:
        assert torn == []
        assert max_entries <= 6
        assert max_bytes <= 6 * 200
    # The surviving directory is consistent: within budget, no tmp debris,
    # and every remaining entry holds its exact expected bytes.
    assert not list(directory.glob("*.tmp"))
    survivor = ResultStore(
        directory, budget=StoreBudget(max_entries=6, max_bytes=6 * 200)
    )
    stats = survivor.stats()
    assert stats["entries"] <= 6 and stats["bytes"] <= 6 * 200
    for worker in range(_PROCESSES):
        for item in range(_DIGESTS):
            digest = _digest((worker, item))
            found = survivor.get(digest)
            assert found is None or found == _payload(digest)
