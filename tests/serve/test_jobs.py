"""JobManager: validation, store keys, byte-identity, lifecycle, shutdown."""

from __future__ import annotations

import time

import pytest

import repro.fleet.runner as fleet_runner
from repro.errors import ConfigError, EmulationError, ServeError
from repro.fleet import FleetRunner, FleetSpec
from repro.scenario.spec import ScenarioSpec
from repro.scenario.study import Study
from repro.serve import (
    JobManager,
    ResultStore,
    encode_document,
    fleet_result_document,
    study_result_document,
)

STUDY_DOC = {
    "scenario": {"name": "jobs-study", "architecture": "baseline"},
    "axes": {"temperature": [0.0, 25.0]},
    "analysis": "balance",
}

FLEET_DOC = {
    "scenario": {
        "name": "jobs-fleet",
        "drive_cycle": {"name": "urban", "params": {"repetitions": 1}},
    },
    "vehicles": 6,
    "seed": 5,
    "chunk_vehicles": 3,
}


def _wait(job, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = job.to_document()["state"]
        if state in ("done", "failed"):
            return job.to_document()
        time.sleep(0.01)
    raise AssertionError(f"job {job.id} still {job.state} after {timeout}s")


@pytest.fixture
def manager():
    manager = JobManager(evaluator_capacity=4)
    yield manager
    manager.shutdown()


class TestRequestValidation:
    def test_unknown_study_fields_fail_at_submit(self, manager):
        with pytest.raises(ConfigError, match="unknown fields"):
            manager.submit_study({**STUDY_DOC, "bogus": 1})

    def test_study_needs_a_scenario(self, manager):
        with pytest.raises(ConfigError, match="needs a 'scenario'"):
            manager.submit_study({"analysis": "balance"})

    def test_unknown_analysis_kind(self, manager):
        with pytest.raises(ConfigError, match="unknown analysis kind"):
            manager.submit_study({**STUDY_DOC, "analysis": "nope"})

    def test_montecarlo_settings_need_the_montecarlo_kind(self, manager):
        with pytest.raises(ConfigError, match="require the 'montecarlo'"):
            manager.submit_study({**STUDY_DOC, "montecarlo": {"samples": 8}})

    def test_process_backend_needs_workers(self, manager):
        with pytest.raises(ConfigError, match="needs workers greater than 1"):
            manager.submit_study({**STUDY_DOC, "backend": "process"})

    def test_fleet_needs_exactly_one_of_fleet_or_scenario(self, manager):
        with pytest.raises(ConfigError, match="exactly one"):
            manager.submit_fleet({"vehicles": 4})

    def test_bad_axis_fails_at_submit(self, manager):
        with pytest.raises(ConfigError, match="unknown scenario axis"):
            manager.submit_study({**STUDY_DOC, "axes": {"nonsense": [1]}})

    def test_submit_after_shutdown_is_refused(self):
        manager = JobManager()
        manager.shutdown()
        with pytest.raises(ServeError, match="shut down"):
            manager.submit_study(STUDY_DOC)


class TestStoreKeys:
    def test_execution_plan_does_not_change_the_key(self, manager):
        baseline = manager.submit_study(STUDY_DOC)
        threaded = manager.submit_study({**STUDY_DOC, "workers": 4})
        process = manager.submit_study({**STUDY_DOC, "workers": 2, "backend": "process"})
        assert baseline.digest == threaded.digest == process.digest
        fleet_a = manager.submit_fleet(FLEET_DOC)
        fleet_b = manager.submit_fleet({**FLEET_DOC, "workers": 3, "retries": 2})
        assert fleet_a.digest == fleet_b.digest

    def test_result_shaping_parameters_change_the_key(self, manager):
        base = manager.submit_fleet(FLEET_DOC)
        other_seed = manager.submit_fleet({**FLEET_DOC, "seed": 6})
        other_interval = manager.submit_fleet({**FLEET_DOC, "record_interval_s": 2.0})
        with_rows = manager.submit_fleet({**FLEET_DOC, "keep_vehicle_rows": True})
        digests = {base.digest, other_seed.digest, other_interval.digest, with_rows.digest}
        assert len(digests) == 4


class TestByteIdentity:
    """The store contract: served bytes == a fresh sequential run's bytes."""

    def test_study_result_matches_fresh_sequential_run(self, manager):
        job = manager.submit_study({**STUDY_DOC, "workers": 2})
        _wait(job)
        served = manager.result_bytes(job.id)
        study = Study(
            ScenarioSpec.from_dict(STUDY_DOC["scenario"]), axes=STUDY_DOC["axes"]
        )
        fresh = encode_document(study_result_document(study.run("balance")))
        assert served == fresh

    def test_fleet_result_matches_fresh_sequential_run(self, manager):
        job = manager.submit_fleet({**FLEET_DOC, "workers": 2, "keep_vehicle_rows": True})
        _wait(job)
        served = manager.result_bytes(job.id)
        fleet = FleetSpec.from_base(
            ScenarioSpec.from_dict(FLEET_DOC["scenario"])
        ).with_population(vehicles=6, seed=5, chunk_vehicles=3)
        fresh = encode_document(
            fleet_result_document(FleetRunner(fleet, keep_vehicle_rows=True).run())
        )
        assert served == fresh

    def test_store_hit_serves_the_same_bytes_without_rerunning(self, manager):
        first = manager.submit_study(STUDY_DOC)
        _wait(first)
        builds_after_first = manager.evaluator_cache.stats()["misses"]
        second = manager.submit_study(STUDY_DOC)
        assert second.state == "done" and second.store_hit
        assert manager.result_bytes(second.id) == manager.result_bytes(first.id)
        # No new evaluator work happened for the replayed request.
        assert manager.evaluator_cache.stats()["misses"] == builds_after_first


class TestLifecycle:
    def test_progress_reaches_totals(self, manager):
        job = manager.submit_fleet(FLEET_DOC)
        document = _wait(job)
        assert document["state"] == "done"
        assert document["progress"] == {
            "items_done": 6,
            "items_total": 6,
            "chunks_done": 2,
            "chunks_total": 2,
            "failures": 0,
        }

    def test_failed_study_reports_the_config_error(self, manager):
        # 'emulate' needs a drive cycle; the scenario names none, so the
        # job fails at run time with the analysis error on the record.
        job = manager.submit_study(
            {"scenario": {"name": "no-cycle"}, "analysis": "emulate"}
        )
        document = _wait(job)
        assert document["state"] == "failed"
        assert "drive_cycle" in document["error"]
        with pytest.raises(ServeError, match="failed"):
            manager.result_bytes(job.id)

    def test_unknown_job_lookup(self, manager):
        with pytest.raises(ServeError, match="unknown job"):
            manager.get("job-999999-deadbeef")

    def test_jobs_listing_keeps_submission_order(self, manager):
        first = manager.submit_study(STUDY_DOC)
        second = manager.submit_fleet(FLEET_DOC)
        assert [job.id for job in manager.jobs()] == [first.id, second.id]


class TestVersionsAndLongPoll:
    def test_every_observable_mutation_bumps_the_version(self, manager):
        job = manager.submit_fleet(FLEET_DOC)
        document = _wait(job)
        # queued->running, two chunk events, six item events and the final
        # done transition all bumped; the exact count depends on observer
        # coalescing, but a finished 2-chunk job is well past zero.
        assert document["version"] >= 3
        assert document["version"] == job.version

    def test_wait_for_change_returns_immediately_when_stale(self, manager):
        job = manager.submit_study(STUDY_DOC)
        _wait(job)
        started = time.monotonic()
        document = job.wait_for_change(version=-1, timeout=30.0)
        assert time.monotonic() - started < 5.0
        assert document["state"] == "done"

    def test_wait_for_change_returns_immediately_on_terminal_jobs(self, manager):
        job = manager.submit_study(STUDY_DOC)
        final = _wait(job)
        started = time.monotonic()
        document = job.wait_for_change(version=final["version"], timeout=30.0)
        assert time.monotonic() - started < 5.0
        assert document["state"] == "done"

    def test_wait_for_change_wakes_on_progress(self, manager):
        job = manager.submit_fleet(FLEET_DOC)
        deadline = time.monotonic() + 120
        document = job.to_document()
        while document["state"] not in ("done", "failed"):
            assert time.monotonic() < deadline, "job never progressed"
            document = job.wait_for_change(document["version"], timeout=5.0)
        assert document["state"] == "done"

    def test_store_hit_jobs_are_born_past_version_zero(self, manager):
        first = manager.submit_study(STUDY_DOC)
        _wait(first)
        second = manager.submit_study(STUDY_DOC)
        assert second.store_hit
        assert second.to_document()["version"] >= 1

    def test_stats_carry_identity_and_uptime(self, manager):
        import os

        stats = manager.stats()
        assert stats["pid"] == os.getpid()
        assert stats["uptime_s"] >= 0.0
        assert {"evictions", "oversize_rejects"} <= set(stats["store"])


class TestStructuredFailures:
    def test_fleet_failures_surface_as_engine_records(self, manager, monkeypatch):
        real = fleet_runner._cohort_vehicle_outcome

        def flaky(vehicle_index, *args, **kwargs):
            if vehicle_index == 2:
                raise EmulationError("injected fault on vehicle 2")
            return real(vehicle_index, *args, **kwargs)

        monkeypatch.setattr(fleet_runner, "_cohort_vehicle_outcome", flaky)
        job = manager.submit_fleet({**FLEET_DOC, "retries": 1})
        document = _wait(job)
        assert document["state"] == "done" and document["partial"]
        assert document["failures"] == [
            {
                "index": 2,
                "attempts": 2,
                "kind": "exception",
                "error": "EmulationError: injected fault on vehicle 2",
            }
        ]
        assert document["progress"]["failures"] == 1

    def test_partial_results_are_not_stored(self, manager, monkeypatch):
        real = fleet_runner._cohort_vehicle_outcome

        def flaky(vehicle_index, *args, **kwargs):
            if vehicle_index in (1, 4):
                raise EmulationError("injected fault")
            return real(vehicle_index, *args, **kwargs)

        monkeypatch.setattr(fleet_runner, "_cohort_vehicle_outcome", flaky)
        job = manager.submit_fleet({**FLEET_DOC, "retries": 1})
        document = _wait(job)
        assert document["partial"]
        assert manager.store.stats()["writes"] == 0
        # The partial document is still retrievable from the job itself.
        assert manager.result_bytes(job.id).startswith(b'{"kind":"fleet"')


class TestShutdown:
    def test_drain_finishes_accepted_jobs(self):
        manager = JobManager()
        job = manager.submit_study(STUDY_DOC)
        manager.shutdown(drain=True)
        assert job.to_document()["state"] == "done"

    def test_stop_checkpoints_inflight_fleet_and_resume_completes(self, tmp_path):
        store_dir = tmp_path / "store"
        checkpoint_root = tmp_path / "ckpt"
        fleet_doc = {
            "scenario": {
                "name": "stop-fleet",
                "drive_cycle": {"name": "urban", "params": {"repetitions": 2}},
            },
            "vehicles": 40,
            "seed": 7,
            "chunk_vehicles": 4,
        }
        manager = JobManager(store=ResultStore(store_dir), checkpoint_root=checkpoint_root)
        job = manager.submit_fleet(fleet_doc)
        deadline = time.monotonic() + 120
        while job.to_document()["progress"]["chunks_done"] < 1:
            assert time.monotonic() < deadline, "no chunk completed in time"
            time.sleep(0.01)
        manager.shutdown(drain=False)
        document = job.to_document()
        assert document["state"] == "done" and document["partial"]
        assert document["progress"]["chunks_done"] < document["progress"]["chunks_total"]
        # Nothing partial was stored, but the chunks were journaled.
        assert ResultStore(store_dir).stats()["entries"] == 0
        assert any(checkpoint_root.iterdir())

        # Re-submitting the same request on a fresh manager resumes from
        # the journal and completes (and stores) the run.
        resumed_manager = JobManager(
            store=ResultStore(store_dir), checkpoint_root=checkpoint_root
        )
        resumed = resumed_manager.submit_fleet(fleet_doc)
        final = _wait(resumed)
        assert final["state"] == "done" and not final["partial"]
        resumed_manager.shutdown()

        # A third submission is a pure store hit with the same bytes.
        third_manager = JobManager(
            store=ResultStore(store_dir), checkpoint_root=checkpoint_root
        )
        third = third_manager.submit_fleet(fleet_doc)
        assert third.store_hit
        assert third_manager.result_bytes(third.id) == resumed_manager.result_bytes(
            resumed.id
        )
        third_manager.shutdown()

    def test_stop_cancels_queued_jobs(self):
        manager = JobManager()
        # Fill the single job worker, then queue one more behind it.
        first = manager.submit_fleet(FLEET_DOC)
        queued = manager.submit_study(STUDY_DOC)
        manager.shutdown(drain=False)
        assert queued.to_document()["state"] in ("failed", "done")
        if queued.to_document()["state"] == "failed":
            assert "shutdown" in queued.to_document()["error"]
        assert first.to_document()["state"] in ("done", "failed")
