"""The HTTP front door, exercised end-to-end through the in-repo client."""

from __future__ import annotations

import http.client
import json
import time

import pytest

import repro.fleet.runner as fleet_runner
from repro.errors import EmulationError, ServeError
from repro.scenario.listing import scenario_listing
from repro.scenario.spec import ScenarioSpec
from repro.scenario.study import Study
from repro.serve import (
    JobManager,
    ServeClient,
    ServeServer,
    encode_document,
    study_result_document,
)

STUDY_DOC = {
    "scenario": {"name": "api-study", "architecture": "baseline"},
    "axes": {"temperature": [0.0, 25.0]},
}

FLEET_DOC = {
    "scenario": {
        "name": "api-fleet",
        "drive_cycle": {"name": "urban", "params": {"repetitions": 1}},
    },
    "vehicles": 6,
    "seed": 5,
    "chunk_vehicles": 3,
}


@pytest.fixture
def server():
    server = ServeServer(JobManager(evaluator_capacity=4), port=0).start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    return ServeClient(port=server.port)


def _raw(server, method, path, body=b"", headers=None):
    """A raw HTTP exchange, for status codes the client turns into errors."""
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz_reports_counters(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}
        assert "evaluator_cache" in health and "store" in health

    def test_scenarios_listing_matches_the_shared_listing(self, client):
        assert client.scenarios() == json.loads(
            json.dumps(scenario_listing(), allow_nan=False)
        )

    def test_study_round_trip_over_http(self, client):
        job = client.submit_study(STUDY_DOC)
        assert job["state"] in ("queued", "running", "done")
        final = client.wait(job["id"])
        assert final["progress"]["items_done"] == 2
        served = client.result_bytes(job["id"])
        study = Study(ScenarioSpec.from_dict(STUDY_DOC["scenario"]), axes=STUDY_DOC["axes"])
        fresh = encode_document(study_result_document(study.run("balance")))
        assert served == fresh

    def test_repost_is_a_store_hit_with_identical_bytes(self, client):
        first = client.submit_study(STUDY_DOC)
        client.wait(first["id"])
        payload = client.result_bytes(first["id"])
        second = client.submit_study(STUDY_DOC)
        assert second["state"] == "done" and second["store_hit"]
        assert client.result_bytes(second["id"]) == payload
        assert client.health()["store"]["hits"] >= 1

    def test_fleet_round_trip_with_structured_failures(self, client, monkeypatch):
        real = fleet_runner._cohort_vehicle_outcome

        def flaky(vehicle_index, *args, **kwargs):
            if vehicle_index == 3:
                raise EmulationError("injected fault on vehicle 3")
            return real(vehicle_index, *args, **kwargs)

        monkeypatch.setattr(fleet_runner, "_cohort_vehicle_outcome", flaky)
        job = client.submit_fleet({**FLEET_DOC, "retries": 1})
        final = client.wait(job["id"])
        assert final["partial"]
        assert final["failures"] == [
            {
                "index": 3,
                "attempts": 2,
                "kind": "exception",
                "error": "EmulationError: injected fault on vehicle 3",
            }
        ]
        document = client.result(job["id"])
        assert document["kind"] == "fleet"
        assert document["metadata"]["vehicles_failed"] == 1
        assert document["metadata"]["failures"] == final["failures"]

    def test_healthz_reports_identity_and_full_counters(self, client, server):
        import os

        health = client.health()
        assert health["pid"] == os.getpid()  # in-process server fixture
        assert health["uptime_s"] >= 0.0
        assert {"entries", "bytes", "evictions", "oversize_rejects"} <= set(
            health["store"]
        )
        assert {"capacity", "size", "hits", "misses"} <= set(health["evaluator_cache"])

    def test_long_poll_returns_immediately_on_a_stale_version(self, client):
        job = client.submit_study(STUDY_DOC)
        final = client.wait(job["id"])
        started = time.monotonic()
        document = client.job(job["id"], wait=20.0, version=-1)
        assert time.monotonic() - started < 5.0
        assert document == final

    def test_long_poll_holds_until_the_job_finishes(self, client):
        job = client.submit_fleet(FLEET_DOC)
        document = job
        deadline = time.monotonic() + 120
        while document["state"] not in ("done", "failed"):
            assert time.monotonic() < deadline
            document = client.job(
                job["id"], wait=5.0, version=document["version"]
            )
        assert document["state"] == "done"

    def test_wait_uses_the_long_poll_end_to_end(self, client):
        job = client.submit_fleet(FLEET_DOC)
        final = client.wait(job["id"])
        assert final["state"] == "done"
        assert final["version"] >= 1

    def test_jobs_listing(self, client):
        first = client.submit_study(STUDY_DOC)
        client.wait(first["id"])
        jobs = client.jobs()
        assert [job["id"] for job in jobs] == [first["id"]]


class TestErrorMapping:
    def test_malformed_json_body_is_a_400(self, server):
        status, payload = _raw(server, "POST", "/studies", b"{not json")
        assert status == 400
        assert "not valid JSON" in json.loads(payload)["error"]

    def test_invalid_document_is_a_400(self, server):
        status, payload = _raw(
            server, "POST", "/studies", json.dumps({"bogus": 1}).encode()
        )
        assert status == 400
        assert "unknown fields" in json.loads(payload)["error"]

    def test_unknown_job_is_a_404(self, server):
        status, payload = _raw(server, "GET", "/jobs/job-000042-deadbeef")
        assert status == 404
        assert "unknown job" in json.loads(payload)["error"]

    def test_result_of_unfinished_job_is_a_409(self, server, client):
        job = client.submit_fleet(FLEET_DOC)
        status, payload = _raw(server, "GET", f"/jobs/{job['id']}/result")
        if status != 200:  # the tiny fleet may already have finished
            assert status == 409
            assert "not ready" in json.loads(payload)["error"]
        client.wait(job["id"])

    def test_wrong_method_is_a_405(self, server):
        assert _raw(server, "GET", "/studies")[0] == 405
        assert _raw(server, "POST", "/healthz")[0] == 405

    def test_unknown_route_is_a_404(self, server):
        assert _raw(server, "GET", "/nope")[0] == 404

    def test_malformed_wait_parameter_is_a_400(self, server, client):
        job = client.submit_study(STUDY_DOC)
        client.wait(job["id"])
        status, payload = _raw(server, "GET", f"/jobs/{job['id']}?wait=soon")
        assert status == 400
        assert "wait" in json.loads(payload)["error"]
        status, _ = _raw(server, "GET", f"/jobs/{job['id']}?wait=1&version=x")
        assert status == 400

    def test_client_raises_serve_error_with_the_server_message(self, client):
        with pytest.raises(ServeError, match="unknown fields"):
            client.submit_study({"bogus": 1})

    def test_unreachable_server_is_a_serve_error(self):
        client = ServeClient(port=1, timeout=2)
        with pytest.raises(ServeError, match="cannot reach serve"):
            client.health()


class TestLifecycleOverHttp:
    def test_stop_drains_accepted_jobs(self):
        server = ServeServer(JobManager(), port=0).start()
        client = ServeClient(port=server.port)
        job = client.submit_study(STUDY_DOC)
        server.stop(drain=True)
        # The manager drained: the job finished even though the listener
        # is gone (its state is inspected directly, not over HTTP).
        assert server.manager.get(job["id"]).to_document()["state"] == "done"

    def test_double_start_is_refused(self, server):
        with pytest.raises(ServeError, match="already started"):
            server.start()
