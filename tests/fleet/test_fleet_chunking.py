"""Chunked fleet materialization: purity, equivalence, cross-chunk sharing.

The streaming contract under checkpointed resume is that chunk ``c`` of the
population is a pure function of ``(seed, fleet document, c)``: any chunk
can be re-materialized in isolation (a resumed run only builds the chunks it
still has to execute) and the concatenation over all chunks equals the
eager reference ``materialize()``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.fleet.spec import FleetSpec
from repro.scenario.spec import ScenarioSpec


def _base() -> ScenarioSpec:
    return ScenarioSpec(
        name="chunking",
        drive_cycle={"name": "urban", "params": {"repetitions": 1}},
    )


def _fleet(vehicles: int, seed: int, chunk_vehicles: int) -> FleetSpec:
    return FleetSpec.from_base(
        _base(), vehicles=vehicles, seed=seed, chunk_vehicles=chunk_vehicles
    )


class TestChunkGeometry:
    def test_chunk_count_and_bounds_cover_the_population(self):
        fleet = _fleet(vehicles=10, seed=1, chunk_vehicles=4)
        assert fleet.chunk_count() == 3
        assert [fleet.chunk_bounds(c) for c in range(3)] == [(0, 4), (4, 4), (8, 2)]

    def test_bad_chunk_index_rejected(self):
        fleet = _fleet(vehicles=10, seed=1, chunk_vehicles=4)
        for bad in (-1, 3, 99):
            with pytest.raises(ConfigError):
                fleet.chunk_bounds(bad)

    def test_chunk_vehicles_validation(self):
        with pytest.raises(ConfigError, match="chunk_vehicles"):
            FleetSpec.from_base(_base(), vehicles=4, chunk_vehicles=0)

    def test_chunk_size_is_part_of_the_document(self):
        # Different chunking = different document digest: a checkpoint can
        # never be resumed under a different chunk geometry.
        a = _fleet(vehicles=10, seed=1, chunk_vehicles=4)
        b = _fleet(vehicles=10, seed=1, chunk_vehicles=5)
        assert a.document_digest() != b.document_digest()
        assert FleetSpec.from_dict(a.to_dict()).chunk_vehicles == 4


class TestChunkPurity:
    @settings(max_examples=25, deadline=None)
    @given(
        vehicles=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chunk_vehicles=st.integers(min_value=1, max_value=17),
    )
    def test_concatenated_chunks_equal_eager_materialize(
        self, vehicles, seed, chunk_vehicles
    ):
        fleet = _fleet(vehicles, seed, chunk_vehicles)
        streamed = [vehicle for chunk in fleet.iter_chunks() for vehicle in chunk]
        assert streamed == fleet.materialize()

    @settings(max_examples=15, deadline=None)
    @given(
        vehicles=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chunk_vehicles=st.integers(min_value=1, max_value=9),
        data=st.data(),
    )
    def test_any_single_chunk_reproducible_in_isolation(
        self, vehicles, seed, chunk_vehicles, data
    ):
        fleet = _fleet(vehicles, seed, chunk_vehicles)
        chunk_index = data.draw(
            st.integers(min_value=0, max_value=fleet.chunk_count() - 1)
        )
        isolated = fleet.materialize_chunk(chunk_index)
        start, count = fleet.chunk_bounds(chunk_index)
        assert isolated == fleet.materialize()[start : start + count]

    def test_chunks_are_sized_by_the_document(self):
        fleet = _fleet(vehicles=11, seed=3, chunk_vehicles=4)
        sizes = [len(chunk) for chunk in fleet.iter_chunks()]
        assert sizes == [4, 4, 3]

    def test_materialization_is_deterministic_across_processes_shape(self):
        # Same document, fresh spec objects: identical population.
        a = _fleet(vehicles=12, seed=9, chunk_vehicles=5)
        b = FleetSpec.from_dict(a.to_dict())
        assert a.materialize() == b.materialize()


class TestCrossChunkSharedState:
    def test_fully_correlated_temperature_spans_chunk_boundaries(self):
        # correlation=1.0 means ONE season draw for the whole fleet: every
        # vehicle (whatever its chunk) must see the same temperature.
        fleet = FleetSpec(
            name="season",
            base=_base(),
            vehicles=12,
            seed=21,
            chunk_vehicles=5,
            distributions=(
                (
                    "temperature_c",
                    {
                        "kind": "correlated-normal",
                        "params": {"mean": 10.0, "std": 8.0, "correlation": 1.0},
                    },
                ),
            ),
        )
        temperatures = {
            vehicle.temperature_c
            for chunk in fleet.iter_chunks()
            for vehicle in chunk
        }
        assert len(temperatures) == 1

    def test_partial_correlation_still_varies_per_vehicle(self):
        fleet = FleetSpec(
            name="season",
            base=_base(),
            vehicles=12,
            seed=21,
            chunk_vehicles=5,
            distributions=(
                (
                    "temperature_c",
                    {
                        "kind": "correlated-normal",
                        "params": {"mean": 10.0, "std": 8.0, "correlation": 0.5},
                    },
                ),
            ),
        )
        temperatures = [
            vehicle.temperature_c
            for chunk in fleet.iter_chunks()
            for vehicle in chunk
        ]
        assert len(set(temperatures)) > 1
        assert [v.temperature_c for v in fleet.materialize()] == temperatures
