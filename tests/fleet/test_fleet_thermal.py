"""Thermal fleet fast path: bit-identity, fallback contract, observability.

The tentpole claim under test: with a :class:`ThermalSpec` on the fleet,
cycle materialization replays the tyre thermal model once per
(cycle, speed-scale, ambient-bin) cohort and the cross-vehicle bin-union
sweep spans (speed, temperature, phase-pattern) triples — yet every
per-vehicle figure is bitwise identical to a naive ``emulate()`` with the
same thermal model, across worker counts, backends, and the forced
per-vehicle fallback.
"""

from __future__ import annotations

import pytest

from repro.core.emulator import NodeEmulator
from repro.core.quantize import ambient_bin, ambient_bin_center_c
from repro.errors import ConfigError, ConfigurationError
from repro.fleet import (
    FleetRunner,
    FleetSpec,
    ThermalSpec,
    default_fleet_distributions,
)
from repro.scavenger.storage import scaled_storage
from repro.scenario.spec import ScenarioSpec


def _thermal_fleet(vehicles: int = 16, seed: int = 13, **fleet_overrides) -> FleetSpec:
    base = ScenarioSpec(
        name="thermal-base",
        drive_cycle={"name": "urban", "params": {"repetitions": 1}},
    )
    distributions = {
        key: value
        for key, value in default_fleet_distributions(base).items()
        if key != "temperature_c"
    }
    distributions["ambient_offset_c"] = {
        "kind": "correlated-normal",
        "params": {"std": 6.0, "correlation": 0.5},
    }
    kwargs = {
        "name": "thermal-fleet",
        "base": base,
        "vehicles": vehicles,
        "seed": seed,
        "distributions": distributions,
        "thermal": ThermalSpec(),
    }
    kwargs.update(fleet_overrides)
    return FleetSpec(**kwargs)


def _naive_summaries(fleet: FleetSpec) -> list[dict]:
    """The reference loop: one fresh thermal emulator per vehicle."""
    thermal = fleet.thermal
    summaries = []
    for vehicle in fleet.materialize():
        spec = vehicle.scenario
        emulator = NodeEmulator(
            spec.build_node(),
            spec.build_database(),
            spec.build_scavenger(),
            scaled_storage(spec.build_storage(), vehicle.storage_scale),
            base_point=spec.operating_point(),
            thermal_model=thermal.build(spec.temperature_c) if thermal else None,
        )
        cycle = spec.build_drive_cycle().scaled(vehicle.speed_scale)
        summaries.append(emulator.emulate(cycle).summary())
    return summaries


@pytest.fixture(scope="module")
def thermal_fleet() -> FleetSpec:
    return _thermal_fleet()


@pytest.fixture(scope="module")
def naive_reference(thermal_fleet) -> list[dict]:
    return _naive_summaries(thermal_fleet)


@pytest.fixture(scope="module")
def sequential_result(thermal_fleet):
    return FleetRunner(thermal_fleet).run()


class TestThermalSpec:
    def test_round_trips_through_fleet_document(self, thermal_fleet):
        rebuilt = FleetSpec.from_dict(thermal_fleet.to_dict())
        assert rebuilt == thermal_fleet
        assert rebuilt.thermal == ThermalSpec()
        assert rebuilt.to_dict() == thermal_fleet.to_dict()

    def test_document_omits_thermal_when_unset(self):
        # The thermal key is absent (not null) for isothermal fleets so
        # pre-thermal documents keep their digests — and their RNG streams.
        fleet = _thermal_fleet(thermal=None, distributions={})
        assert "thermal" not in fleet.to_dict()
        assert FleetSpec.from_dict(fleet.to_dict()).thermal is None

    def test_coerce_accepts_mapping(self):
        spec = ThermalSpec.coerce({"time_constant_s": 300.0})
        assert spec.time_constant_s == 300.0
        assert spec.rise_coefficient == ThermalSpec().rise_coefficient

    def test_coerce_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown field"):
            ThermalSpec.coerce({"rise": 0.1})

    @pytest.mark.parametrize(
        "field, value",
        [
            ("rise_coefficient", -0.1),
            ("max_rise_c", float("nan")),
            ("time_constant_s", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigError, match=field):
            ThermalSpec(**{field: value})

    def test_offset_and_absolute_ambient_are_exclusive(self):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            _thermal_fleet(
                distributions={
                    "temperature_c": {
                        "kind": "correlated-normal",
                        "params": {"mean": 25.0, "std": 4.0},
                    },
                    "ambient_offset_c": {
                        "kind": "correlated-normal",
                        "params": {"std": 4.0},
                    },
                }
            )


class TestMaterialization:
    def test_ambients_snap_to_bin_centers(self, thermal_fleet):
        # The FP contract: a replayed trajectory is a function of its exact
        # float ambient, so thermal fleets only realize bin-center ambients.
        temperatures = {v.scenario.temperature_c for v in thermal_fleet.materialize()}
        assert len(temperatures) > 1  # the offset axis actually spreads
        for temperature in temperatures:
            assert temperature == ambient_bin_center_c(ambient_bin(temperature))

    def test_offsets_center_on_the_base_ambient(self, thermal_fleet):
        # Zero-mean offsets around the base ambient: every realized ambient
        # stays within a few standard deviations of the base (the correlated
        # fleet-wide component shifts the whole population, so the sample
        # mean itself is not tightly centred at n=16).
        base = thermal_fleet.base.temperature_c
        temperatures = [v.scenario.temperature_c for v in thermal_fleet.materialize()]
        assert all(abs(t - base) < 5 * 6.0 for t in temperatures)

    def test_isothermal_fleet_does_not_snap(self):
        fleet = _thermal_fleet(thermal=None)
        temps = [v.scenario.temperature_c for v in fleet.materialize()]
        snapped = [t for t in temps if t != ambient_bin_center_c(ambient_bin(t))]
        assert snapped  # offsets stay exact floats without a thermal model


class TestBitIdentity:
    def test_fast_path_matches_naive_thermal_emulate(self, sequential_result, naive_reference):
        assert len(sequential_result.vehicle_rows) == len(naive_reference)
        for row, summary in zip(sequential_result.vehicle_rows, naive_reference):
            for key, value in summary.items():
                assert row[key] == value, f"fleet row diverged on {key!r}"

    def test_threaded_rows_identical(self, thermal_fleet, sequential_result):
        threaded = FleetRunner(thermal_fleet, workers=2, backend="thread").run()
        assert threaded.vehicle_rows == sequential_result.vehicle_rows

    def test_process_rows_identical(self, thermal_fleet, sequential_result):
        processed = FleetRunner(thermal_fleet, workers=2, backend="process").run()
        assert processed.vehicle_rows == sequential_result.vehicle_rows

    def test_forced_fallback_rows_identical(self, thermal_fleet, sequential_result):
        forced = FleetRunner(thermal_fleet, force_fallback=True).run()
        assert forced.vehicle_rows == sequential_result.vehicle_rows
        metadata = forced.metadata
        assert metadata["fast_path_vehicles"] == 0
        assert metadata["fallback_vehicles"] == thermal_fleet.vehicles
        assert metadata["fallback_reasons"] == {"forced": thermal_fleet.vehicles}


class TestObservability:
    def test_clean_run_counts_every_vehicle_fast(self, thermal_fleet, sequential_result):
        metadata = sequential_result.metadata
        assert metadata["fast_path_vehicles"] == thermal_fleet.vehicles
        assert metadata["fallback_vehicles"] == 0
        assert metadata["fallback_reasons"] == {}
        assert metadata["untagged_vehicles"] == 0
        assert metadata["force_fallback"] is False

    def test_thermal_document_and_quantum_reported(self, sequential_result):
        metadata = sequential_result.metadata
        assert metadata["thermal"] == ThermalSpec().to_dict()
        assert metadata["ambient_quantum_c"] == 2.0

    def test_isothermal_metadata_shape(self):
        result = FleetRunner(_thermal_fleet(vehicles=4, thermal=None)).run()
        metadata = result.metadata
        assert metadata["thermal"] is None
        assert metadata["ambient_quantum_c"] is None
        assert metadata["fast_path_vehicles"] + metadata["fallback_vehicles"] == 4


class TestFallbackContract:
    def test_out_of_range_trajectory_errors_like_naive(self):
        # Self-heating from a near-ceiling ambient leaves the modelled
        # range: the cohort falls back per vehicle, and the error surfaces
        # with exactly the message (offending unit) the naive loop raises.
        base = ScenarioSpec(
            name="hot",
            temperature_c=199.0,
            drive_cycle={"name": "urban", "params": {"repetitions": 3}},
        )
        fleet = FleetSpec(
            name="hot-fleet",
            base=base,
            vehicles=2,
            seed=1,
            distributions={},
            thermal=ThermalSpec(),
        )
        with pytest.raises(ConfigurationError) as naive_error:
            _naive_summaries(fleet)
        with pytest.raises(ConfigurationError) as fleet_error:
            FleetRunner(fleet).run()
        assert str(fleet_error.value) == str(naive_error.value)
