"""Tests for FleetSpec: validation, round trips, deterministic materialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conditions.operating_point import TEMPERATURE_RANGE_C
from repro.errors import ConfigError
from repro.fleet import (
    FLEET_TARGETS,
    DistributionSpec,
    FleetSpec,
    default_fleet_distributions,
    load_fleet,
)
from repro.scenario.spec import ScenarioSpec


def _base(**overrides) -> ScenarioSpec:
    kwargs = {
        "name": "base",
        "drive_cycle": {"name": "urban", "params": {"repetitions": 1}},
    }
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestConstruction:
    def test_from_base_applies_default_distributions(self):
        fleet = FleetSpec.from_base(_base(), vehicles=32, seed=9)
        assert fleet.vehicles == 32
        assert fleet.seed == 9
        targets = [target for target, _spec in fleet.distributions]
        assert targets == sorted(
            ["speed_scale", "temperature_c", "scavenger_size", "storage_capacity"]
        )

    def test_distributions_accept_mapping(self):
        fleet = FleetSpec(
            base=_base(),
            distributions={"speed_scale": {"kind": "lognormal", "params": {"sigma": 0.1}}},
        )
        assert fleet.distribution_for("speed_scale") == DistributionSpec(
            "lognormal", (("sigma", 0.1),)
        )
        assert fleet.distribution_for("temperature_c") is None

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError, match="unknown fleet distribution target"):
            FleetSpec(base=_base(), distributions={"tyre_width": "normal"})

    def test_storage_required(self):
        with pytest.raises(ConfigError, match="storage"):
            FleetSpec(base=_base(storage=None))

    def test_cycle_required_unless_distributed(self):
        with pytest.raises(ConfigError, match="drive_cycle"):
            FleetSpec(base=ScenarioSpec(name="no-cycle"))
        fleet = FleetSpec(
            base=ScenarioSpec(name="no-cycle"),
            distributions={
                "drive_cycle": {
                    "kind": "categorical",
                    "params": {"choices": ["nedc", "highway"]},
                }
            },
        )
        assert fleet.distribution_for("drive_cycle") is not None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vehicles": 0},
            {"vehicles": 2.5},
            {"vehicles": True},
            {"seed": -1},
            {"scale_quantum": -0.1},
            {"scale_quantum": float("inf")},
            {"name": ""},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FleetSpec(base=_base(), **kwargs)

    def test_base_document_is_coerced(self):
        fleet = FleetSpec(base=_base().to_dict())
        assert isinstance(fleet.base, ScenarioSpec)
        assert fleet.base == _base()

    def test_with_population(self):
        fleet = FleetSpec.from_base(_base())
        bigger = fleet.with_population(vehicles=999, seed=4)
        assert bigger.vehicles == 999
        assert bigger.seed == 4
        assert bigger.distributions == fleet.distributions
        assert fleet.with_population() is fleet


class TestRoundTrip:
    def test_exact_round_trip(self):
        fleet = FleetSpec.from_base(_base(), vehicles=64, seed=3)
        assert FleetSpec.from_dict(fleet.to_dict()) == fleet

    def test_json_round_trip(self, tmp_path):
        fleet = FleetSpec.from_base(_base(), vehicles=16)
        path = fleet.save(tmp_path / "fleet.json")
        assert load_fleet(path) == fleet

    def test_unknown_fields_rejected(self):
        document = FleetSpec.from_base(_base()).to_dict()
        document["fuel"] = "diesel"
        with pytest.raises(ConfigError, match="unknown fleet field"):
            FleetSpec.from_dict(document)

    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read fleet file"):
            load_fleet(tmp_path / "absent.json")

    def test_malformed_json_raises_config_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_fleet(path)

    # -- property test: from_dict(to_dict()) == spec, mirroring ScenarioSpec --

    @staticmethod
    def _distribution_strategy():
        finite = st.floats(min_value=0.01, max_value=50.0, allow_nan=False, allow_infinity=False)
        normal = st.builds(
            lambda mean, std: DistributionSpec("normal", (("mean", mean), ("std", std))),
            finite,
            finite,
        )
        lognormal = st.builds(
            lambda sigma: DistributionSpec("lognormal", (("sigma", sigma),)),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
        tolerance = st.builds(
            lambda rel: DistributionSpec("gaussian-tolerance", (("rel_std", rel),)),
            st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
        )
        categorical = st.just(
            DistributionSpec(
                "categorical",
                (("choices", ("urban", "nedc")), ("weights", (2.0, 1.0))),
            )
        )
        return st.one_of(normal, lognormal, tolerance, categorical)

    @given(
        vehicles=st.integers(min_value=1, max_value=100000),
        seed=st.integers(min_value=0, max_value=2**31),
        scale_quantum=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        name=st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=12,
        ),
        targets=st.dictionaries(
            st.sampled_from([t for t in FLEET_TARGETS if t != "drive_cycle"]),
            _distribution_strategy(),
            max_size=4,
        ).map(
            # temperature_c and ambient_offset_c are mutually exclusive axes.
            lambda d: (
                {k: v for k, v in d.items() if k != "ambient_offset_c"}
                if "temperature_c" in d
                else d
            )
        ),
        temperature=st.floats(min_value=-40.0, max_value=125.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, vehicles, seed, scale_quantum, name, targets, temperature):
        low, high = TEMPERATURE_RANGE_C
        fleet = FleetSpec(
            name=name,
            base=_base(temperature_c=min(max(temperature, low), high)),
            vehicles=vehicles,
            seed=seed,
            scale_quantum=scale_quantum,
            distributions=targets,
        )
        document = json.loads(json.dumps(fleet.to_dict()))
        rebuilt = FleetSpec.from_dict(document)
        assert rebuilt == fleet
        assert rebuilt.to_dict() == fleet.to_dict()


class TestMaterialization:
    def test_population_size_and_indices(self):
        fleet = FleetSpec.from_base(_base(), vehicles=17, seed=2)
        vehicles = fleet.materialize()
        assert [vehicle.index for vehicle in vehicles] == list(range(17))
        assert len({vehicle.scenario.name for vehicle in vehicles}) == 17

    def test_same_seed_same_population(self):
        fleet = FleetSpec.from_base(_base(), vehicles=24, seed=5)
        assert fleet.materialize() == fleet.materialize()

    def test_different_seed_different_population(self):
        base = _base()
        first = FleetSpec.from_base(base, vehicles=24, seed=5).materialize()
        second = FleetSpec.from_base(base, vehicles=24, seed=6).materialize()
        assert first != second

    def test_sampled_axes_respect_ranges(self):
        fleet = FleetSpec.from_base(_base(), vehicles=64, seed=1)
        low, high = TEMPERATURE_RANGE_C
        for vehicle in fleet.materialize():
            assert vehicle.speed_scale > 0.0
            assert low <= vehicle.temperature_c <= high
            assert vehicle.scenario.scavenger_size > 0.0
            assert vehicle.storage_scale > 0.0

    def test_scale_quantum_quantizes_the_drive_style_axis(self):
        fleet = FleetSpec.from_base(_base(), vehicles=64, seed=1)
        scales = {vehicle.speed_scale for vehicle in fleet.materialize()}
        for scale in scales:
            assert round(scale / fleet.scale_quantum) == pytest.approx(scale / fleet.scale_quantum)
        # Quantization is what lets vehicles share materialized cycles.
        assert len(scales) < 64

    def test_zero_quantum_keeps_exact_draws(self):
        fleet = FleetSpec(
            base=_base(),
            vehicles=32,
            seed=1,
            scale_quantum=0.0,
            distributions=default_fleet_distributions(_base()),
        )
        scales = {vehicle.speed_scale for vehicle in fleet.materialize()}
        assert len(scales) == 32

    def test_cycle_mix_is_applied(self):
        fleet = FleetSpec(
            base=_base(),
            vehicles=40,
            seed=3,
            distributions={
                "drive_cycle": {
                    "kind": "categorical",
                    "params": {
                        "choices": [
                            {"name": "urban", "params": {"repetitions": 1}},
                            "nedc",
                        ]
                    },
                }
            },
        )
        cycles = {vehicle.scenario.drive_cycle.name for vehicle in fleet.materialize()}
        assert cycles == {"urban", "nedc"}

    def test_materialization_is_spec_derived_not_order_derived(self):
        """Dropping a distribution must not perturb the remaining targets'
        draw *positions* (fixed target order), only remove its own axis."""
        base = _base()
        with_all = FleetSpec(
            base=base,
            vehicles=8,
            seed=7,
            distributions=default_fleet_distributions(base),
        )
        assert with_all.materialize() == with_all.materialize()
