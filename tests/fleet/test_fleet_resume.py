"""Fleet runner resume semantics: checkpointing, partial runs, streaming."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.fleet import FleetRunner, FleetSpec
from repro.fleet.spec import FleetVehicle
from repro.scenario.spec import ScenarioSpec


def _fleet(vehicles: int = 12, seed: int = 5, chunk: int = 4) -> FleetSpec:
    base = ScenarioSpec(
        name="resume",
        drive_cycle={"name": "urban", "params": {"repetitions": 1}},
    )
    return FleetSpec.from_base(base, vehicles=vehicles, seed=seed, chunk_vehicles=chunk)


def _digest(result) -> str:
    """Canonical byte-level digest of everything a run exports."""
    return json.dumps(
        {
            "summary": result.summary,
            "survival": result.survival,
            "rows": result.vehicle_rows,
        },
        sort_keys=True,
        allow_nan=True,
    )


@pytest.fixture(scope="module")
def fresh_result():
    """One uninterrupted reference run shared by the comparison tests."""
    return FleetRunner(_fleet()).run()


class TestResume:
    def test_kill_and_resume_is_byte_identical(self, tmp_path, fresh_result):
        ckpt = str(tmp_path / "ckpt")
        partial = FleetRunner(_fleet(), checkpoint=ckpt, max_chunks=2).run()
        assert partial.metadata["partial"] is True
        assert partial.metadata["chunks_completed"] == 2
        assert partial.metadata["chunks_total"] == 3
        assert partial.metadata["vehicles_run"] == 8

        resumed = FleetRunner(_fleet(), checkpoint=ckpt).run()
        assert resumed.metadata["partial"] is False
        assert resumed.metadata["resumed_chunks"] == 2
        assert resumed.metadata["resumed_vehicles"] == 8
        assert _digest(resumed) == _digest(fresh_result)

    def test_full_replay_is_byte_identical(self, tmp_path, fresh_result):
        ckpt = str(tmp_path / "ckpt")
        FleetRunner(_fleet(), checkpoint=ckpt).run()
        replayed = FleetRunner(_fleet(), checkpoint=ckpt).run()
        assert replayed.metadata["engine_backend"] == "resumed"
        assert replayed.metadata["resumed_chunks"] == 3
        assert _digest(replayed) == _digest(fresh_result)

    def test_resume_across_worker_settings_is_byte_identical(self, tmp_path, fresh_result):
        # The journal carries results, not scheduling: finishing on a thread
        # pool what a sequential run started changes nothing.
        ckpt = str(tmp_path / "ckpt")
        FleetRunner(_fleet(), checkpoint=ckpt, max_chunks=1).run()
        resumed = FleetRunner(_fleet(), workers=4, checkpoint=ckpt).run()
        assert _digest(resumed) == _digest(fresh_result)

    def test_checkpointed_first_run_is_byte_identical_to_plain(self, tmp_path, fresh_result):
        checkpointed = FleetRunner(_fleet(), checkpoint=str(tmp_path / "ckpt")).run()
        assert _digest(checkpointed) == _digest(fresh_result)

    def test_max_chunks_without_checkpoint_is_just_partial(self, fresh_result):
        partial = FleetRunner(_fleet(), max_chunks=1).run()
        assert partial.metadata["partial"] is True
        assert partial.vehicle_rows == fresh_result.vehicle_rows[:4]

    def test_checkpoint_key_pins_runner_parameters(self, tmp_path):
        from repro.errors import CheckpointError

        ckpt = str(tmp_path / "ckpt")
        FleetRunner(_fleet(), checkpoint=ckpt, max_chunks=1).run()
        with pytest.raises(CheckpointError, match="belongs to a different run"):
            FleetRunner(_fleet(), checkpoint=ckpt, record_interval_s=2.0).run()


class TestStreamingMaterialization:
    def test_runner_never_calls_eager_materialize(self, monkeypatch, fresh_result):
        def exploding_materialize(self):  # pragma: no cover - must not run
            raise AssertionError("the runner eagerly materialized the population")

        monkeypatch.setattr(FleetSpec, "materialize", exploding_materialize)
        result = FleetRunner(_fleet()).run()
        assert _digest(result) == _digest(fresh_result)

    def test_parent_holds_at_most_one_chunk_of_vehicles(self, monkeypatch):
        """The in-flight FleetVehicle population is bounded by the chunk size."""
        import gc

        fleet = _fleet(vehicles=12, chunk=4)
        peak = {"alive": 0}
        original_sample = FleetSpec._sample_chunk

        def counting_sample(self, samplers, shared, chunk_index, count):
            gc.collect()
            alive = sum(
                1 for obj in gc.get_objects() if isinstance(obj, FleetVehicle)
            )
            peak["alive"] = max(peak["alive"], alive)
            return original_sample(self, samplers, shared, chunk_index, count)

        monkeypatch.setattr(FleetSpec, "_sample_chunk", counting_sample)
        FleetRunner(fleet).run()
        # At each chunk boundary the previous chunk's vehicles are already
        # garbage: the parent never accumulates the population.
        assert peak["alive"] <= fleet.chunk_vehicles

    def test_discovery_and_execution_chunk_twice(self):
        # Two streaming passes (discovery + execution), not one eager build.
        fleet = _fleet(vehicles=8, chunk=4)
        calls = []
        original = FleetSpec.iter_chunks

        def counting_iter(self):
            calls.append(1)
            return original(self)

        import unittest.mock

        with unittest.mock.patch.object(FleetSpec, "iter_chunks", counting_iter):
            FleetRunner(fleet).run()
        assert len(calls) == 2
