"""Tests for the distribution registry and the Monte-Carlo fold-in."""

from __future__ import annotations

import numpy as np
import pytest

from repro.conditions.operating_point import TEMPERATURE_RANGE_C
from repro.errors import ConfigError
from repro.fleet.distributions import (
    DISTRIBUTIONS,
    Distribution,
    DistributionSpec,
    register_distribution,
)
from repro.scenario.montecarlo import MonteCarloConfig
from repro.scenario.spec import ScenarioSpec


def _rng(seed: int = 5) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestDistributionSpec:
    def test_coerce_from_string(self):
        assert DistributionSpec.coerce("normal", "x") == DistributionSpec("normal")

    def test_coerce_from_mapping(self):
        spec = DistributionSpec.coerce(
            {"kind": "uniform", "params": {"low": 0.0, "high": 1.0}}, "x"
        )
        assert spec.kind == "uniform"
        assert dict(spec.params) == {"low": 0.0, "high": 1.0}

    def test_params_order_is_normalized(self):
        a = DistributionSpec("normal", (("std", 1.0), ("mean", 0.0)))
        b = DistributionSpec("normal", (("mean", 0.0), ("std", 1.0)))
        assert a == b

    def test_round_trip(self):
        spec = DistributionSpec("lognormal", (("sigma", 0.1), ("low", 0.5)))
        again = DistributionSpec.coerce(spec.to_dict(), "x")
        assert again == spec
        assert DistributionSpec.coerce(DistributionSpec("normal").to_dict(), "x") == (
            DistributionSpec("normal")
        )

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            DistributionSpec.coerce({"kind": "normal", "parms": {}}, "x")

    def test_missing_kind_rejected(self):
        with pytest.raises(ConfigError, match="needs a 'kind'"):
            DistributionSpec.coerce({"params": {}}, "x")

    def test_unknown_kind_fails_at_build(self):
        with pytest.raises(ConfigError, match="unknown distribution"):
            DistributionSpec("heaviside").build()

    def test_bad_params_become_config_errors(self):
        with pytest.raises(ConfigError, match="invalid parameters"):
            DistributionSpec("normal", (("variance", 2.0),)).build()


class TestBuiltinKinds:
    def test_normal_matches_raw_rng_call(self):
        sampler = DistributionSpec("normal", (("mean", 10.0), ("std", 2.0))).build()
        assert np.array_equal(sampler.sample(_rng(), 64), _rng().normal(10.0, 2.0, 64))

    def test_clipped_normal_clips(self):
        sampler = DistributionSpec(
            "clipped-normal",
            (("mean", 0.0), ("std", 5.0), ("low", -1.0), ("high", 1.0)),
        ).build()
        draws = sampler.sample(_rng(), 512)
        assert np.all((draws >= -1.0) & (draws <= 1.0))

    def test_uniform_bounds(self):
        sampler = DistributionSpec("uniform", (("low", 2.0), ("high", 3.0))).build()
        draws = sampler.sample(_rng(), 256)
        assert np.all((draws >= 2.0) & (draws < 3.0))

    def test_lognormal_median_and_clip(self):
        params = (("sigma", 0.2), ("low", 0.7), ("high", 1.5))
        sampler = DistributionSpec("lognormal", params).build()
        draws = sampler.sample(_rng(), 4096)
        assert np.all((draws >= 0.7) & (draws <= 1.5))
        assert np.median(draws) == pytest.approx(1.0, rel=0.05)

    def test_correlated_normal_marginals_and_correlation(self):
        sampler = DistributionSpec(
            "correlated-normal",
            (("mean", 0.0), ("std", 1.0), ("correlation", 0.7)),
        ).build()
        populations = np.array(
            [sampler.sample(np.random.default_rng(seed), 2) for seed in range(4000)]
        )
        # Across many fleets, each vehicle's marginal is N(0, 1) and two
        # vehicles of the same fleet correlate at the configured rho.
        assert np.std(populations[:, 0]) == pytest.approx(1.0, rel=0.1)
        assert np.corrcoef(populations[:, 0], populations[:, 1])[0, 1] == pytest.approx(
            0.7, abs=0.05
        )

    def test_gaussian_tolerance_stays_positive(self):
        sampler = DistributionSpec("gaussian-tolerance", (("rel_std", 0.5),)).build()
        draws = sampler.sample(_rng(), 4096)
        assert np.all(draws > 0.0)

    def test_categorical_mixes_choices(self):
        sampler = DistributionSpec(
            "categorical",
            (("choices", ("urban", "nedc")), ("weights", (3.0, 1.0))),
        ).build()
        draws = sampler.sample(_rng(), 1000)
        counts = {value: int(np.sum(draws == value)) for value in ("urban", "nedc")}
        assert counts["urban"] + counts["nedc"] == 1000
        assert counts["urban"] > counts["nedc"]

    def test_constant(self):
        draws = DistributionSpec("constant", (("value", "urban"),)).build().sample(_rng(), 8)
        assert all(value == "urban" for value in draws)

    @pytest.mark.parametrize(
        "kind, params",
        [
            ("normal", {"mean": 0.0, "std": -1.0}),
            ("normal", {"mean": float("nan"), "std": 1.0}),
            ("uniform", {"low": 2.0, "high": 1.0}),
            ("lognormal", {"sigma": -0.1}),
            ("lognormal", {"sigma": 0.1, "median": 0.0}),
            ("correlated-normal", {"mean": 0.0, "std": 1.0, "correlation": 1.5}),
            ("gaussian-tolerance", {"rel_std": -0.1}),
            ("gaussian-tolerance", {"rel_std": 0.1, "low": -1.0, "high": 2.0}),
            ("categorical", {"choices": ()}),
            ("categorical", {"choices": ("a",), "weights": (1.0, 2.0)}),
            ("clipped-normal", {"mean": 0.0, "std": 1.0, "low": 2.0, "high": 1.0}),
        ],
    )
    def test_invalid_parameters_rejected(self, kind, params):
        with pytest.raises(ConfigError):
            DistributionSpec(kind, tuple(params.items())).build()


class TestRegistryExtension:
    def test_user_registered_kind_builds(self):
        @register_distribution("test-dist-halves")
        def halves():
            class Halves(Distribution):
                def sample(self, rng, count):
                    return np.full(count, 0.5)

            return Halves()

        try:
            draws = DistributionSpec("test-dist-halves").build().sample(_rng(), 4)
            assert np.array_equal(draws, np.full(4, 0.5))
        finally:
            DISTRIBUTIONS.unregister("test-dist-halves")

    def test_non_distribution_factory_rejected(self):
        DISTRIBUTIONS.register("test-dist-broken", lambda: object())
        try:
            with pytest.raises(ConfigError, match="did not produce a Distribution"):
                DistributionSpec("test-dist-broken").build()
        finally:
            DISTRIBUTIONS.unregister("test-dist-broken")


class TestMonteCarloFoldIn:
    def test_default_draws_bit_identical_to_legacy_samplers(self, node):
        """The registry-backed defaults reproduce the historical stream exactly.

        The legacy implementation consumed the rng as: clipped normal
        (speed), clipped normal (temperature), uniform (activity), then
        three Bernoulli pattern columns.  The acceptance bar for folding the
        samplers into the registry is that a default config's draws stay
        bit-identical.
        """
        spec = ScenarioSpec(name="fold-in")
        config = MonteCarloConfig(samples=256, seed=99)
        point = spec.operating_point()
        draws = config.draw(node, point, config.rng_for(spec.to_json()))

        rng = config.rng_for(spec.to_json())
        count = config.samples
        ceiling = node.max_sustainable_speed_kmh() * 0.999
        low_speed = min(5.0, ceiling)
        speeds = np.clip(
            rng.normal(point.speed_kmh, config.speed_rel_std * point.speed_kmh, count),
            low_speed,
            ceiling,
        )
        low_t, high_t = TEMPERATURE_RANGE_C
        temperatures = np.clip(
            rng.normal(point.temperature_c, config.temperature_std_c, count),
            low_t,
            high_t,
        )
        activities = rng.uniform(*config.activity_range, count)
        assert np.array_equal(draws.conditions.speed_kmh, speeds)
        assert np.array_equal(draws.conditions.temperature_c, temperatures)
        assert np.array_equal(draws.conditions.activity, activities)

    def test_custom_distributions_change_the_population(self, node):
        spec = ScenarioSpec(name="custom")
        default = MonteCarloConfig(samples=64, seed=1)
        lognormal = MonteCarloConfig(
            samples=64,
            seed=1,
            speed_distribution={
                "kind": "lognormal",
                "params": {"sigma": 0.2, "median": 60.0},
            },
        )
        point = spec.operating_point()
        first = default.draw(node, point, default.rng_for(spec.to_json()))
        second = lognormal.draw(node, point, lognormal.rng_for(spec.to_json()))
        assert not np.array_equal(first.conditions.speed_kmh, second.conditions.speed_kmh)
        # Still clipped into the node's sustainable range.
        assert np.all(second.conditions.speed_kmh <= node.max_sustainable_speed_kmh())

    def test_distribution_fields_are_coerced(self):
        config = MonteCarloConfig(
            activity_distribution={"kind": "uniform", "params": {"low": 0.5, "high": 0.9}}
        )
        assert isinstance(config.activity_distribution, DistributionSpec)
        assert config.activity_distribution.kind == "uniform"
