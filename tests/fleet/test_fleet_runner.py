"""Tests for the fleet runner: sharing, determinism, aggregate correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.emulator import NodeEmulator
from repro.errors import ConfigError
from repro.fleet import FleetResult, FleetRunner, FleetSpec, run_fleet
from repro.scavenger.storage import scaled_storage
from repro.scenario.spec import ScenarioSpec


def _fleet(vehicles: int = 10, seed: int = 7, **base_overrides) -> FleetSpec:
    kwargs = {
        "name": "base",
        "drive_cycle": {"name": "urban", "params": {"repetitions": 1}},
    }
    kwargs.update(base_overrides)
    return FleetSpec.from_base(ScenarioSpec(**kwargs), vehicles=vehicles, seed=seed)


@pytest.fixture(scope="module")
def sequential_result() -> FleetResult:
    """One sequential reference run shared by the comparison tests."""
    return FleetRunner(_fleet()).run()


class TestValidation:
    def test_needs_a_fleet_spec(self):
        with pytest.raises(ConfigError, match="FleetSpec"):
            FleetRunner({"vehicles": 3})

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            FleetRunner(_fleet(), workers=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            FleetRunner(_fleet(), backend="gpu")

    def test_invalid_record_interval_rejected(self):
        with pytest.raises(ConfigError, match="record interval"):
            FleetRunner(_fleet(), record_interval_s=0.0)

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ConfigError, match="buckets"):
            FleetRunner(_fleet(), survival_buckets=0)


class TestSharing:
    def test_one_evaluator_per_group(self, sequential_result):
        # Every vehicle shares the base architecture/workload/database.
        assert sequential_result.metadata["groups"] == 1
        assert sequential_result.metadata["evaluator_builds"] == 1

    def test_cohorts_far_fewer_than_vehicles(self, sequential_result):
        metadata = sequential_result.metadata
        assert 1 <= metadata["cohorts"] < metadata["vehicles"]
        assert metadata["fallback_cohorts"] == 0

    def test_bins_swept_once_cover_the_population(self, sequential_result):
        assert sequential_result.metadata["shared_energy_bins"] > 0

    def test_quantization_constants_are_single_sourced(self, sequential_result):
        from repro.core import quantize

        assert sequential_result.metadata["speed_quantum_kmh"] == quantize.SPEED_QUANTUM_KMH
        assert sequential_result.metadata["temperature_quantum_c"] == quantize.TEMPERATURE_QUANTUM_C


class TestCorrectness:
    def test_rows_bit_identical_to_naive_per_vehicle_emulate(self, sequential_result):
        """The acceptance bar: sharing can never change a vehicle's figures."""
        fleet = _fleet()
        for vehicle, row in zip(fleet.materialize(), sequential_result.vehicle_rows):
            spec = vehicle.scenario
            emulator = NodeEmulator(
                spec.build_node(),
                spec.build_database(),
                spec.build_scavenger(),
                scaled_storage(spec.build_storage(), vehicle.storage_scale),
                base_point=spec.operating_point(),
            )
            cycle = spec.build_drive_cycle().scaled(vehicle.speed_scale)
            summary = emulator.emulate(cycle).summary()
            for key, value in summary.items():
                assert row[key] == value

    def test_summary_row_matches_vehicle_rows(self, sequential_result):
        rows = sequential_result.vehicle_rows
        summary = sequential_result.summary
        assert summary["vehicles"] == len(rows)
        assert summary["mean_coverage_pct"] == pytest.approx(
            float(np.mean([row["revolution_coverage_pct"] for row in rows]))
        )
        assert summary["net_mj_p50"] == pytest.approx(
            float(np.percentile([row["net_mj"] for row in rows], 50.0))
        )
        assert summary["brownout_per_hour_p90"] == pytest.approx(
            float(np.percentile([row["brownout_per_hour"] for row in rows], 90.0))
        )

    def test_survival_curve_shape(self, sequential_result):
        survival = sequential_result.survival
        assert len(survival) == sequential_result.metadata["survival_buckets"]
        for row in survival:
            assert 0.0 <= row["surviving_pct"] <= 100.0
            assert row["vehicles"] == sequential_result.metadata["vehicles"]

    def test_deficit_fleet_reports_brownouts(self):
        # An undersized scavenger on a long cycle must brown out: the fleet
        # statistics have to see it.
        fleet = FleetSpec.from_base(
            ScenarioSpec(
                name="deficit",
                scavenger_size=0.05,
                drive_cycle={"name": "urban", "params": {"repetitions": 2}},
            ),
            vehicles=6,
            seed=3,
        )
        result = FleetRunner(fleet).run()
        assert result.summary["brownout_per_hour_p90"] > 0.0
        assert result.summary["surviving_at_end_pct"] < 100.0
        curve = [row["surviving_pct"] for row in result.survival]
        assert min(curve) < 100.0


class TestDeterminism:
    def test_thread_workers_identical_aggregates(self, sequential_result):
        parallel = FleetRunner(_fleet(), workers=4).run()
        assert parallel.summary == sequential_result.summary
        assert parallel.survival == sequential_result.survival
        assert parallel.vehicle_rows == sequential_result.vehicle_rows

    def test_process_backend_identical_aggregates(self, sequential_result):
        process = FleetRunner(_fleet(), workers=2, backend="process").run()
        assert process.summary == sequential_result.summary
        assert process.survival == sequential_result.survival
        assert process.vehicle_rows == sequential_result.vehicle_rows

    def test_same_seed_reproduces_the_run(self, sequential_result):
        again = FleetRunner(_fleet()).run()
        assert again.summary == sequential_result.summary
        assert again.survival == sequential_result.survival

    def test_different_seed_changes_the_run(self, sequential_result):
        other = FleetRunner(_fleet(seed=8)).run()
        assert other.summary != sequential_result.summary

    def test_200_vehicle_fleet_is_worker_count_independent(self):
        """The acceptance bar: seeded aggregates on a >=200-vehicle fleet are
        identical whatever worker count executes them."""
        fleet = _fleet(vehicles=200, seed=13)
        sequential = FleetRunner(fleet, keep_vehicle_rows=False).run()
        threaded = FleetRunner(fleet, workers=4, keep_vehicle_rows=False).run()
        assert threaded.summary == sequential.summary
        assert threaded.survival == sequential.survival
        assert sequential.summary["vehicles"] == 200


class TestResultSurface:
    def test_to_study_result_rides_existing_exports(self, sequential_result, tmp_path):
        study_result = sequential_result.to_study_result()
        assert study_result.kind == "fleet"
        assert len(study_result) == 1
        path = study_result.to_csv(tmp_path / "fleet.csv")
        assert path.read_text().startswith("fleet,")
        assert "surviving_at_end_pct" in study_result.as_table()

    def test_exports(self, sequential_result, tmp_path):
        sequential_result.to_csv(tmp_path / "summary.csv")
        sequential_result.to_json(tmp_path / "summary.json")
        sequential_result.survival_to_csv(tmp_path / "survival.csv")
        sequential_result.vehicles_to_csv(tmp_path / "vehicles.csv")
        lines = (tmp_path / "vehicles.csv").read_text().splitlines()
        assert len(lines) == sequential_result.metadata["vehicles"] + 1

    def test_streaming_only_mode_drops_vehicle_rows(self):
        result = FleetRunner(_fleet(vehicles=4), keep_vehicle_rows=False).run()
        assert result.vehicle_rows is None
        with pytest.raises(ConfigError, match="per-vehicle rows"):
            result.vehicles_to_csv("anywhere.csv")
        # Aggregates are unaffected.
        assert result.summary["vehicles"] == 4

    def test_run_fleet_convenience(self):
        result = run_fleet(_fleet(vehicles=3), workers=2)
        assert isinstance(result, FleetResult)
        assert len(result) == 3
        assert result.metadata["workers"] == 2

    def test_metadata_records_the_run(self, sequential_result):
        metadata = sequential_result.metadata
        assert metadata["kind"] == "fleet"
        assert metadata["vehicles"] == 10
        assert metadata["backend"] == "thread"
        assert metadata["wall_time_s"] > 0.0
        assert len(metadata["vehicle_wall_times_s"]) == 10
        assert metadata["fleet_document"]["vehicles"] == 10


class TestCycleMixAndTolerances:
    def test_cycle_mix_produces_multiple_cohorts(self):
        fleet = FleetSpec(
            base=ScenarioSpec(
                name="mixed", drive_cycle={"name": "urban", "params": {"repetitions": 1}}
            ),
            vehicles=12,
            seed=5,
            distributions={
                "drive_cycle": {
                    "kind": "categorical",
                    "params": {
                        "choices": [{"name": "urban", "params": {"repetitions": 1}}, "nedc"]
                    },
                },
            },
        )
        result = FleetRunner(fleet).run()
        cycles = {row["cycle"] for row in result.vehicle_rows}
        assert cycles == {"urban-x1", "nedc-like"}

    def test_storage_tolerance_scales_every_threshold(self):
        fleet = _fleet(vehicles=6)
        for vehicle in fleet.materialize():
            storage = scaled_storage(vehicle.scenario.build_storage(), vehicle.storage_scale)
            reference = vehicle.scenario.build_storage()
            ratio = storage.capacity_j / reference.capacity_j
            assert ratio == pytest.approx(vehicle.storage_scale)
            assert storage.restart_level_j / reference.restart_level_j == pytest.approx(
                vehicle.storage_scale
            )
