"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.blocks import baseline_node, legacy_tpms_node, optimized_node
from repro.conditions.operating_point import OperatingPoint
from repro.power import reference_power_database
from repro.scavenger import PiezoelectricScavenger, supercapacitor


@pytest.fixture(autouse=True)
def _fresh_census_timing_cache():
    """Isolate the cross-instance census-timing cache between tests.

    The cache is keyed by node *value*, so a test that monkeypatches
    ``SensorNode`` scheduling methods must not see timings computed by an
    earlier test with the unpatched behaviour (and vice versa).
    """
    from repro.core.evaluator import clear_census_timing_cache

    clear_census_timing_cache()
    yield
    clear_census_timing_cache()


@pytest.fixture
def database():
    """A fresh reference power database."""
    return reference_power_database()


@pytest.fixture
def node():
    """The baseline Sensor Node architecture."""
    return baseline_node()


@pytest.fixture
def optimized():
    """The architecture-level optimized Sensor Node."""
    return optimized_node()


@pytest.fixture
def legacy():
    """The legacy pressure/temperature-only TPMS node."""
    return legacy_tpms_node()


@pytest.fixture
def point():
    """Nominal operating point at 60 km/h."""
    return OperatingPoint(speed_kmh=60.0)


@pytest.fixture
def slow_point():
    """Nominal operating point at 20 km/h (deficit region)."""
    return OperatingPoint(speed_kmh=20.0)


@pytest.fixture
def scavenger():
    """The default piezoelectric scavenger."""
    return PiezoelectricScavenger()


@pytest.fixture
def storage():
    """A default supercapacitor storage element."""
    return supercapacitor()
