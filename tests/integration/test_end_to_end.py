"""Integration tests: the full toolchain exercised through the public API."""

from __future__ import annotations

import pytest

from repro import (
    EnergyAnalysisFlow,
    EnergyBalanceAnalysis,
    EnergyEvaluator,
    NodeEmulator,
    OperatingPoint,
    PiezoelectricScavenger,
    Spreadsheet,
    baseline_node,
    legacy_tpms_node,
    nedc_like_cycle,
    optimized_node,
    reference_power_database,
    supercapacitor,
    urban_cycle,
)
from repro.core.operating_window import find_operating_windows, summarize_windows
from repro.optimization import apply_assignments, select_techniques
from repro.power.io import database_from_json, database_to_json


class TestPublicApiSurface:
    def test_top_level_imports_expose_the_documented_names(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_defined(self):
        import repro

        assert repro.__version__


class TestQuickstartPath:
    """The README quickstart must keep working verbatim."""

    def test_quickstart_flow(self):
        flow = EnergyAnalysisFlow(
            node=baseline_node(),
            database=reference_power_database(),
            scavenger=PiezoelectricScavenger(),
            storage=supercapacitor(),
        )
        report = flow.run(
            speeds_kmh=list(range(5, 205, 10)),
            drive_cycle=urban_cycle(repetitions=1),
        )
        summary = report.summary()
        assert summary["energy_per_rev_uj"] > 0.0
        assert summary["break_even_before_kmh"] > 0.0
        assert 0.0 <= summary["moving_active_fraction_pct"] <= 100.0


class TestDatabaseRoundTripThroughAnalysis:
    def test_exported_database_reproduces_the_analysis(self, tmp_path):
        node = baseline_node()
        database = reference_power_database()
        point = OperatingPoint(speed_kmh=60.0)
        original = EnergyEvaluator(node, database).energy_per_revolution_j(point)

        path = database_to_json(database, tmp_path / "characterization.json")
        restored = database_from_json(path)
        reproduced = EnergyEvaluator(node, restored).energy_per_revolution_j(point)
        assert reproduced == pytest.approx(original)


class TestOptimizationLoopConsistency:
    def test_manual_loop_matches_flow(self):
        """Running selection + application by hand gives the same optimized
        energy as letting the flow orchestrate it."""
        node = baseline_node()
        database = reference_power_database()
        scavenger = PiezoelectricScavenger()
        point = OperatingPoint(speed_kmh=60.0)

        evaluator = EnergyEvaluator(node, database)
        assignments = select_techniques(
            evaluator.duty_cycles(point), database=database
        )
        manual = apply_assignments(node, database, assignments, point=point)

        flow_report = EnergyAnalysisFlow(node, database, scavenger).run(
            point=point, speeds_kmh=[20.0, 60.0, 120.0]
        )
        assert flow_report.optimization.energy_after_j == pytest.approx(
            manual.energy_after_j
        )

    def test_optimized_database_feeds_back_into_every_tool(self):
        node = baseline_node()
        database = reference_power_database()
        point = OperatingPoint(speed_kmh=60.0)
        evaluator = EnergyEvaluator(node, database)
        outcome = apply_assignments(
            node,
            database,
            select_techniques(evaluator.duty_cycles(point), database=database),
            point=point,
        )

        # Balance with the optimized database has a lower break-even.
        scavenger = PiezoelectricScavenger()
        before = EnergyBalanceAnalysis(node, database, scavenger).break_even_speed_kmh()
        after = EnergyBalanceAnalysis(
            node, outcome.database, scavenger
        ).break_even_speed_kmh()
        assert after < before

        # Emulation with the optimized database consumes less.
        cycle = urban_cycle(repetitions=1)
        consumed_before = NodeEmulator(
            node, database, scavenger, supercapacitor()
        ).emulate(cycle).consumed_j
        consumed_after = NodeEmulator(
            node, outcome.database, scavenger, supercapacitor()
        ).emulate(cycle).consumed_j
        assert consumed_after < consumed_before


class TestArchitectureStory:
    """The cross-architecture narrative of the reproduction holds end to end."""

    def test_break_even_ordering_across_architectures(self):
        database = reference_power_database()
        scavenger = PiezoelectricScavenger()
        break_evens = {}
        for node in (legacy_tpms_node(), optimized_node(), baseline_node()):
            analysis = EnergyBalanceAnalysis(node, database, scavenger)
            break_evens[node.name] = analysis.break_even_speed_kmh()
        assert break_evens["legacy-tpms"] < break_evens["optimized"]
        assert break_evens["optimized"] < break_evens["baseline"]

    def test_spreadsheet_comparison_is_consistent_with_break_evens(self):
        database = reference_power_database()
        sheet = Spreadsheet(baseline_node(), database)
        rows = sheet.compare_architectures([optimized_node(), legacy_tpms_node()])
        energies = {row["architecture"]: row["energy_per_rev_uj"] for row in rows}
        assert energies["legacy-tpms"] < energies["optimized"] < energies["baseline"]


class TestLongWindowEmulation:
    def test_nedc_like_emulation_with_operating_windows(self):
        node = optimized_node()
        database = reference_power_database()
        emulator = NodeEmulator(
            node,
            database,
            PiezoelectricScavenger(),
            supercapacitor(),
        )
        result = emulator.emulate(nedc_like_cycle())
        windows = find_operating_windows(result)
        summary = summarize_windows(windows, result.duration_s)
        assert result.revolutions > 1000
        assert 0.0 <= summary.coverage_fraction <= 1.0
        # The node must at least operate during the fast extra-urban section.
        assert result.active_revolutions > 0
