"""Failure-injection tests: the toolchain fails fast and with useful messages.

A characterization database with missing or corrupted entries, infeasible
architectures and starved energy budgets must be reported at the first
analysis step that can detect them — not as a wrong number three tools later.
"""

from __future__ import annotations

import pytest

from repro.blocks import SensorNode
from repro.blocks.radio import RadioConfig
from repro.conditions.operating_point import OperatingPoint
from repro.core.balance import EnergyBalanceAnalysis
from repro.core.emulator import NodeEmulator
from repro.core.evaluator import EnergyEvaluator
from repro.core.flow import EnergyAnalysisFlow
from repro.errors import (
    CharacterizationError,
    EmulationError,
    ReproError,
    ScheduleError,
)
from repro.power import reference_power_database
from repro.scavenger import ElectrostaticScavenger, PiezoelectricScavenger, supercapacitor
from repro.vehicle.drive_cycle import constant_cruise


class TestMissingCharacterization:
    def test_evaluator_rejects_a_database_missing_a_block(self, node):
        database = reference_power_database()
        for mode in database.modes_of("accelerometer"):
            database.remove("accelerometer", mode)
        with pytest.raises(CharacterizationError, match="accelerometer"):
            EnergyEvaluator(node, database)

    def test_evaluator_rejects_a_database_missing_one_mode(self, node):
        database = reference_power_database()
        database.remove("mcu", "idle")
        with pytest.raises(CharacterizationError, match="mcu/idle"):
            EnergyEvaluator(node, database)

    def test_flow_fails_at_construction_time_of_the_evaluator(self, node, scavenger):
        database = reference_power_database()
        database.remove("rf_tx", "active")
        flow = EnergyAnalysisFlow(node, database, scavenger)
        with pytest.raises(CharacterizationError, match="rf_tx"):
            flow.run(speeds_kmh=[20.0, 60.0])

    def test_error_message_lists_available_modes(self, node):
        database = reference_power_database()
        with pytest.raises(CharacterizationError, match="sleep"):
            database.entry("mcu", "hibernate")


class TestInfeasibleArchitectures:
    def test_node_that_cannot_keep_up_raises_a_schedule_error(self):
        # A very slow radio with a huge packet cannot finish inside a wheel
        # round at highway speed.
        node = SensorNode(
            name="overloaded",
            radio=RadioConfig(data_rate_bps=1e3, payload_bits=2048, tx_interval_revs=1),
        )
        with pytest.raises(ScheduleError):
            node.schedule_for(150.0, revolution_index=0)

    def test_balance_analysis_propagates_the_schedule_error(self):
        node = SensorNode(
            name="overloaded",
            radio=RadioConfig(data_rate_bps=1e3, payload_bits=2048, tx_interval_revs=1),
        )
        analysis = EnergyBalanceAnalysis(
            node, reference_power_database(), PiezoelectricScavenger()
        )
        with pytest.raises(ReproError):
            analysis.curve([20.0, 180.0])

    def test_max_sustainable_speed_reports_the_limit_instead(self):
        node = SensorNode(
            name="overloaded",
            radio=RadioConfig(data_rate_bps=1e3, payload_bits=2048, tx_interval_revs=1),
        )
        limit = node.max_sustainable_speed_kmh(upper_bound_kmh=300.0)
        assert 0.0 < limit < 150.0


class TestStarvedEnergyBudget:
    def test_emulation_survives_a_hopeless_scavenger(self, node, database):
        """A starving configuration is a result (zero coverage), not a crash."""
        storage = supercapacitor(capacity_j=0.02, initial_fraction=0.1)
        emulator = NodeEmulator(node, database, ElectrostaticScavenger(), storage)
        result = emulator.emulate(constant_cruise(30.0, duration_s=300.0))
        assert result.brownout_events >= 1
        assert result.revolution_coverage < 0.5

    def test_balance_reports_no_break_even_for_a_hopeless_scavenger(self, node, database):
        analysis = EnergyBalanceAnalysis(node, database, ElectrostaticScavenger())
        assert analysis.break_even_speed_kmh(high_kmh=150.0) is None


class TestEmulatorInputValidation:
    def test_bad_idle_step_is_rejected(self, node, database, scavenger, storage):
        emulator = NodeEmulator(node, database, scavenger, storage)
        with pytest.raises(ReproError):
            emulator.emulate(constant_cruise(60.0, duration_s=10.0), idle_step_s=0.0)

    def test_bad_trace_window_is_rejected(self, node, database, scavenger, storage):
        emulator = NodeEmulator(node, database, scavenger, storage)
        with pytest.raises(EmulationError):
            emulator.emulate(
                constant_cruise(60.0, duration_s=10.0), trace_window=(3.0, 3.0)
            )

    def test_corrupted_database_entry_fails_at_query_time(self, node, scavenger):
        """A negative power figure is rejected when the entry is built, so a
        corrupted import cannot silently poison the analysis."""
        from repro.power.entry import make_entry

        with pytest.raises(ReproError):
            make_entry("mcu", "active", dynamic_uw=-100.0, leakage_uw=1.0)

    def test_operating_point_outside_model_range_is_rejected(self):
        with pytest.raises(ReproError):
            OperatingPoint(temperature_c=400.0)
