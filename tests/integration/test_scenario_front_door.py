"""Acceptance: the declarative front door reproduces the hand-wired quickstart.

The quickstart example and ``tpms-energy run --scenario quickstart.json``
must agree on the headline numbers — balance break-even, per-block energy —
with byte-identical table output, because both are now two doors into the
same :class:`~repro.scenario.spec.ScenarioSpec`.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.scenario.spec import load_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"
QUICKSTART_SCENARIO = EXAMPLES / "scenarios" / "quickstart.json"


@pytest.fixture(scope="module")
def quickstart_module():
    sys.path.insert(0, str(EXAMPLES))
    try:
        import quickstart
    finally:
        sys.path.remove(str(EXAMPLES))
    return quickstart


class TestQuickstartEquivalence:
    def test_scenario_file_matches_the_python_spec(self, quickstart_module):
        assert load_scenario(QUICKSTART_SCENARIO) == quickstart_module.quickstart_spec()

    def test_cli_run_output_is_byte_identical_to_quickstart(
        self, capsys, quickstart_module
    ):
        quickstart_module.main()
        example_output = capsys.readouterr().out

        assert main(["run", "--scenario", str(QUICKSTART_SCENARIO)]) == 0
        cli_output = capsys.readouterr().out

        assert cli_output == example_output
        # The headline tables really are in there.
        assert "Per-block energy over one wheel round at 60 km/h" in cli_output
        assert "break_even_before_kmh" in cli_output


class TestScenarioGridExample:
    def test_grid_example_runs(self, capsys):
        sys.path.insert(0, str(EXAMPLES))
        try:
            import scenario_grid
        finally:
            sys.path.remove(str(EXAMPLES))
        scenario_grid.main()
        output = capsys.readouterr().out
        assert "Break-even speed across the grid" in output
        assert "2 evaluator builds" in output
        assert "4 cache hits" in output
