"""Shape checks for the paper's figures (the reproduction's acceptance tests).

Absolute numbers cannot match the authors' proprietary characterization, but
the qualitative structure of each figure must hold; these tests pin that
structure so refactoring cannot silently break the reproduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EnergyAnalysisFlow,
    EnergyBalanceAnalysis,
    NodeEmulator,
    OperatingPoint,
    PiezoelectricScavenger,
    baseline_node,
    reference_power_database,
    supercapacitor,
)


@pytest.fixture(scope="module")
def node():
    return baseline_node()


@pytest.fixture(scope="module")
def database():
    return reference_power_database()


@pytest.fixture(scope="module")
def scavenger():
    return PiezoelectricScavenger()


class TestFig1FlowShape:
    """Fig. 1: the flow's steps feed each other in the documented order."""

    def test_flow_produces_every_artifact_in_order(self, node, database, scavenger):
        flow = EnergyAnalysisFlow(node, database, scavenger, storage=supercapacitor())
        report = flow.run(speeds_kmh=list(range(10, 210, 20)))
        # estimation -> evaluation -> optimization -> re-estimation -> integration
        assert report.power_table
        assert report.energy_report is not None
        assert report.duty_cycles is not None
        assert report.optimization is not None
        assert report.energy_report_after is not None
        assert report.balance_before is not None and report.balance_after is not None

    def test_re_estimation_shows_the_optimization_return(self, node, database, scavenger):
        report = EnergyAnalysisFlow(node, database, scavenger).run(
            speeds_kmh=[20.0, 60.0, 120.0]
        )
        assert (
            report.energy_report_after.total_energy_j
            < report.energy_report.total_energy_j
        )


class TestFig2BalanceShape:
    """Fig. 2: generated and required energy versus cruising speed."""

    @pytest.fixture(scope="class")
    def curve(self, node, database, scavenger):
        analysis = EnergyBalanceAnalysis(node, database, scavenger)
        return analysis.curve(np.arange(5.0, 201.0, 5.0))

    def test_two_curves_cross_exactly_once(self, curve):
        signs = np.sign(curve.margins_j)
        crossings = np.sum(np.diff(signs) != 0)
        assert crossings == 1

    def test_deficit_below_break_even_surplus_above(self, curve):
        break_even = curve.break_even_speed_kmh()
        for point in curve.points:
            if point.speed_kmh < break_even - 1.0:
                assert not point.is_surplus
            if point.speed_kmh > break_even + 1.0:
                assert point.is_surplus

    def test_break_even_is_in_the_tens_of_kmh(self, curve):
        assert 20.0 <= curve.break_even_speed_kmh() <= 90.0

    def test_generated_curve_rises_monotonically(self, curve):
        assert np.all(np.diff(curve.generated_j) >= -1e-15)

    def test_required_energy_per_round_is_higher_at_low_speed(self, curve):
        assert curve.required_j[0] > curve.required_j[-1]


class TestFig3InstantPowerShape:
    """Fig. 3: instant power of the node over a limited timing window."""

    @pytest.fixture(scope="class")
    def trace(self, node, database, scavenger):
        emulator = NodeEmulator(node, database, scavenger, supercapacitor())
        return emulator.steady_state_trace(60.0, window_s=1.0)

    def test_burst_pattern_repeats_once_per_wheel_round(self, trace, node):
        period = node.wheel.revolution_period_s(60.0)
        transmit_starts = [
            start for start, _, _, label in trace.segments() if label == "transmit"
        ]
        assert len(transmit_starts) == pytest.approx(1.0 / period, abs=1)
        gaps = np.diff(transmit_starts)
        assert np.allclose(gaps, period, rtol=0.02)

    def test_peak_is_orders_of_magnitude_above_the_sleep_floor(self, trace):
        assert trace.peak_power_w() / trace.min_power_w() > 50.0

    def test_peak_is_the_radio_burst(self, trace):
        transmit_power = max(
            power for _, _, power, label in trace.segments() if label == "transmit"
        )
        assert transmit_power == pytest.approx(trace.peak_power_w())

    def test_sleep_floor_dominates_the_time_axis(self, trace):
        sleep_time = sum(
            duration for _, duration, _, label in trace.segments() if label == "sleep"
        )
        assert sleep_time / trace.duration_s > 0.5

    def test_average_power_is_far_below_peak(self, trace):
        assert trace.average_power_w() < 0.25 * trace.peak_power_w()


class TestConditionDependencies:
    """Section II: the working-condition dependencies the tools must expose."""

    def test_leakage_share_grows_with_temperature(self, node, database):
        from repro.core.spreadsheet import Spreadsheet

        sheet = Spreadsheet(node, database)
        rows = sheet.temperature_sweep([-40.0, 25.0, 85.0, 125.0])
        fractions = [row.static_fraction for row in rows]
        assert fractions == sorted(fractions)
        assert fractions[-1] > 2.0 * fractions[1]

    def test_break_even_rises_in_the_hot_corner(self, node, database, scavenger):
        analysis = EnergyBalanceAnalysis(node, database, scavenger)
        nominal = analysis.break_even_speed_kmh()
        hot = analysis.break_even_speed_kmh(
            point_factory=lambda speed: OperatingPoint(
                speed_kmh=speed, temperature_c=125.0
            )
        )
        assert hot > nominal + 2.0
