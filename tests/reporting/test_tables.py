"""Tests for plain-text table rendering."""

from __future__ import annotations

import pytest

from repro.errors import ExportError
from repro.reporting.tables import render_table


ROWS = [
    {"block": "mcu", "energy_uj": 12.5, "share_pct": 40.0},
    {"block": "rf_tx", "energy_uj": 35.0, "share_pct": 60.0},
]


class TestRenderTable:
    def test_contains_header_and_rows(self):
        text = render_table(ROWS)
        assert "block" in text
        assert "mcu" in text
        assert "rf_tx" in text

    def test_floats_use_requested_precision(self):
        text = render_table(ROWS, float_digits=1)
        assert "12.5" in text
        assert "35.0" in text

    def test_title_is_prepended(self):
        text = render_table(ROWS, title="Energy per block")
        assert text.splitlines()[0] == "Energy per block"

    def test_column_selection_and_order(self):
        text = render_table(ROWS, columns=["share_pct", "block"])
        header = text.splitlines()[0]
        assert header.index("share_pct") < header.index("block")
        assert "energy_uj" not in text

    def test_line_count(self):
        text = render_table(ROWS)
        assert len(text.splitlines()) == 2 + len(ROWS)

    def test_boolean_rendering(self):
        text = render_table([{"name": "x", "ok": True}, {"name": "y", "ok": False}])
        assert "yes" in text
        assert "no" in text

    def test_columns_are_aligned(self):
        lines = render_table(ROWS).splitlines()
        separators = [line.index("|") for line in lines if "|" in line]
        assert len(set(separators)) == 1

    def test_empty_rows_rejected(self):
        with pytest.raises(ExportError):
            render_table([])

    def test_missing_column_rejected(self):
        with pytest.raises(ExportError):
            render_table(ROWS, columns=["block", "latency"])
