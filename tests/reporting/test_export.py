"""Tests for CSV/JSON row exports."""

from __future__ import annotations

import csv
import json
import math

import numpy as np
import pytest

from repro.errors import ExportError
from repro.reporting.export import rows_to_csv, rows_to_json


ROWS = [
    {"speed_kmh": 20.0, "required_uj": 90.1, "surplus": False},
    {"speed_kmh": 80.0, "required_uj": 55.3, "surplus": True},
]


class TestCsvExport:
    def test_round_trip_row_count(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "rows.csv")
        with path.open() as handle:
            restored = list(csv.DictReader(handle))
        assert len(restored) == 2

    def test_header_matches_columns(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "rows.csv")
        header = path.read_text().splitlines()[0]
        assert header == "speed_kmh,required_uj,surplus"

    def test_values_survive(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "rows.csv")
        with path.open() as handle:
            restored = list(csv.DictReader(handle))
        assert float(restored[1]["required_uj"]) == pytest.approx(55.3)

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            rows_to_csv([], tmp_path / "rows.csv")

    def test_inconsistent_columns_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            rows_to_csv(
                [{"a": 1}, {"b": 2}],
                tmp_path / "rows.csv",
            )


class TestJsonExport:
    def test_round_trip(self, tmp_path):
        path = rows_to_json(ROWS, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert restored[0]["speed_kmh"] == 20.0
        assert restored[1]["surplus"] is True

    def test_non_finite_floats_become_null(self, tmp_path):
        rows = [{"value": float("nan")}, {"value": float("inf")}]
        path = rows_to_json(rows, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert restored[0]["value"] is None
        assert restored[1]["value"] is None

    def test_finite_floats_are_preserved(self, tmp_path):
        path = rows_to_json(ROWS, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert not math.isnan(restored[0]["required_uj"])

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            rows_to_json([], tmp_path / "rows.json")


class TestNonFiniteHandling:
    """NaN/inf must never reach a file as invalid JSON or ambiguous CSV."""

    def test_nested_non_finite_floats_become_null(self, tmp_path):
        rows = [
            {
                "values": [1.0, float("nan"), float("-inf")],
                "nested": {"margin": float("inf"), "ok": 2.5},
            }
        ]
        path = rows_to_json(rows, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert restored[0]["values"] == [1.0, None, None]
        assert restored[0]["nested"] == {"margin": None, "ok": 2.5}

    def test_numpy_scalars_are_normalized(self, tmp_path):
        rows = [
            {
                "nan": np.float64("nan"),
                "value": np.float64(3.5),
                "count": np.int64(7),
                "flag": np.bool_(True),
            }
        ]
        path = rows_to_json(rows, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert restored[0] == {"nan": None, "value": 3.5, "count": 7, "flag": True}

    def test_numpy_arrays_serialize_with_nulls(self, tmp_path):
        rows = [{"curve": np.array([1.0, float("nan"), 3.0])}]
        path = rows_to_json(rows, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert restored[0]["curve"] == [1.0, None, 3.0]

    def test_output_is_strict_json(self, tmp_path):
        rows = [{"value": float("nan")}]
        path = rows_to_json(rows, tmp_path / "rows.json")
        text = path.read_text()
        assert "NaN" not in text
        assert "Infinity" not in text
        json.loads(text)  # strict parser accepts the file

    def test_csv_non_finite_floats_become_empty_cells(self, tmp_path):
        rows = [
            {"speed": 20.0, "margin": float("nan")},
            {"speed": 40.0, "margin": float("inf")},
            {"speed": 60.0, "margin": 1.25},
        ]
        path = rows_to_csv(rows, tmp_path / "rows.csv")
        with path.open() as handle:
            restored = list(csv.DictReader(handle))
        assert restored[0]["margin"] == ""
        assert restored[1]["margin"] == ""
        assert float(restored[2]["margin"]) == pytest.approx(1.25)

    def test_csv_numpy_nan_becomes_empty_cell(self, tmp_path):
        rows = [{"margin": np.float64("nan")}]
        path = rows_to_csv(rows, tmp_path / "rows.csv")
        with path.open() as handle:
            restored = list(csv.DictReader(handle))
        assert restored[0]["margin"] == ""

    def test_unserializable_value_raises_export_error(self, tmp_path):
        with pytest.raises(ExportError, match="not JSON-serializable"):
            rows_to_json([{"value": object()}], tmp_path / "rows.json")
