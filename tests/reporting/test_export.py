"""Tests for CSV/JSON row exports."""

from __future__ import annotations

import csv
import json
import math

import pytest

from repro.errors import ExportError
from repro.reporting.export import rows_to_csv, rows_to_json


ROWS = [
    {"speed_kmh": 20.0, "required_uj": 90.1, "surplus": False},
    {"speed_kmh": 80.0, "required_uj": 55.3, "surplus": True},
]


class TestCsvExport:
    def test_round_trip_row_count(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "rows.csv")
        with path.open() as handle:
            restored = list(csv.DictReader(handle))
        assert len(restored) == 2

    def test_header_matches_columns(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "rows.csv")
        header = path.read_text().splitlines()[0]
        assert header == "speed_kmh,required_uj,surplus"

    def test_values_survive(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "rows.csv")
        with path.open() as handle:
            restored = list(csv.DictReader(handle))
        assert float(restored[1]["required_uj"]) == pytest.approx(55.3)

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            rows_to_csv([], tmp_path / "rows.csv")

    def test_inconsistent_columns_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            rows_to_csv(
                [{"a": 1}, {"b": 2}],
                tmp_path / "rows.csv",
            )


class TestJsonExport:
    def test_round_trip(self, tmp_path):
        path = rows_to_json(ROWS, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert restored[0]["speed_kmh"] == 20.0
        assert restored[1]["surplus"] is True

    def test_non_finite_floats_become_null(self, tmp_path):
        rows = [{"value": float("nan")}, {"value": float("inf")}]
        path = rows_to_json(rows, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert restored[0]["value"] is None
        assert restored[1]["value"] is None

    def test_finite_floats_are_preserved(self, tmp_path):
        path = rows_to_json(ROWS, tmp_path / "rows.json")
        restored = json.loads(path.read_text())
        assert not math.isnan(restored[0]["required_uj"])

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            rows_to_json([], tmp_path / "rows.json")
