"""Tests for the ASCII curve plotting helper."""

from __future__ import annotations

import pytest

from repro.errors import ExportError
from repro.reporting.ascii_plot import ascii_plot


X = list(range(0, 101, 10))
RISING = [float(v) for v in X]
FALLING = [100.0 - float(v) for v in X]


class TestAsciiPlot:
    def test_contains_markers_for_each_series(self):
        chart = ascii_plot(X, {"generated": RISING, "required": FALLING})
        assert "*" in chart
        assert "o" in chart

    def test_legend_lists_series_names(self):
        chart = ascii_plot(X, {"generated": RISING, "required": FALLING})
        legend = chart.splitlines()[-1]
        assert "generated" in legend
        assert "required" in legend

    def test_axis_labels_are_included(self):
        chart = ascii_plot(X, {"y": RISING}, x_label="speed [km/h]", y_label="energy [uJ]")
        assert "speed [km/h]" in chart
        assert "energy [uJ]" in chart

    def test_y_range_annotations(self):
        chart = ascii_plot(X, {"y": RISING})
        assert "100" in chart
        assert "0" in chart

    def test_height_and_width_control_output_size(self):
        chart = ascii_plot(X, {"y": RISING}, width=40, height=10)
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_lines) == 10

    def test_constant_series_does_not_crash(self):
        chart = ascii_plot(X, {"flat": [5.0] * len(X)})
        assert "flat" in chart

    def test_single_point_x_axis(self):
        chart = ascii_plot([1.0], {"y": [2.0]})
        assert "y" in chart

    def test_empty_x_rejected(self):
        with pytest.raises(ExportError):
            ascii_plot([], {"y": []})

    def test_no_series_rejected(self):
        with pytest.raises(ExportError):
            ascii_plot(X, {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExportError):
            ascii_plot(X, {"y": RISING[:-1]})

    def test_too_small_plot_area_rejected(self):
        with pytest.raises(ExportError):
            ascii_plot(X, {"y": RISING}, width=5, height=2)
