"""Tests for the functional-block base description."""

from __future__ import annotations

import pytest

from repro.blocks.base import BlockCategory, FunctionalBlock
from repro.errors import ConfigurationError, UnknownModeError


def make_block(**overrides):
    parameters = dict(
        name="mcu",
        category=BlockCategory.DIGITAL,
        modes=("active", "idle", "sleep"),
        resting_mode="sleep",
    )
    parameters.update(overrides)
    return FunctionalBlock(**parameters)


class TestFunctionalBlock:
    def test_valid_block(self):
        block = make_block()
        assert block.name == "mcu"
        assert block.resting_mode == "sleep"
        assert not block.always_on

    def test_validate_mode_accepts_known_mode(self):
        assert make_block().validate_mode("idle") == "idle"

    def test_validate_mode_rejects_unknown_mode(self):
        with pytest.raises(UnknownModeError):
            make_block().validate_mode("turbo")

    def test_required_characterization(self):
        assert make_block().required_characterization == {
            "mcu": ("active", "idle", "sleep")
        }

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_block(name="")

    def test_no_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_block(modes=())

    def test_duplicate_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_block(modes=("active", "active"))

    def test_resting_mode_must_be_a_mode(self):
        with pytest.raises(ConfigurationError):
            make_block(resting_mode="off")

    def test_always_on_flag(self):
        block = make_block(name="lf_rx", modes=("active", "sleep"), resting_mode="active",
                           always_on=True, category=BlockCategory.RADIO)
        assert block.always_on

    def test_categories_cover_the_node_domains(self):
        names = {category.value for category in BlockCategory}
        assert names == {"analog", "digital", "memory", "radio", "power"}
