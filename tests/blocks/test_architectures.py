"""Tests for the predefined Sensor Node architectures."""

from __future__ import annotations

import pytest

from repro.blocks.architectures import (
    architecture_catalogue,
    baseline_node,
    legacy_tpms_node,
    optimized_node,
)
from repro.conditions.operating_point import OperatingPoint
from repro.core.evaluator import EnergyEvaluator
from repro.power.library import reference_power_database


class TestCatalogue:
    def test_contains_three_architectures(self):
        assert set(architecture_catalogue()) == {"legacy-tpms", "baseline", "optimized"}

    def test_names_match_keys(self):
        for name, node in architecture_catalogue().items():
            assert node.name == name

    def test_all_architectures_validate_against_the_library(self):
        database = reference_power_database()
        for node in architecture_catalogue().values():
            node.validate_database(database)


class TestArchitectureDifferences:
    def test_legacy_node_has_no_accelerometer(self):
        assert "accelerometer" not in legacy_tpms_node().block_names()

    def test_baseline_node_transmits_every_revolution(self):
        assert baseline_node().radio.tx_interval_revs == 1

    def test_optimized_node_aggregates_packets(self):
        assert optimized_node().radio.tx_interval_revs > 1

    def test_optimized_node_compresses_payload(self):
        assert optimized_node().mcu.compression_ratio < 1.0

    def test_shared_wheel_instance(self):
        from repro.vehicle.wheel import Wheel

        wheel = Wheel()
        catalogue = architecture_catalogue(wheel)
        assert all(node.wheel is wheel for node in catalogue.values())


class TestArchitectureEnergyOrdering:
    """The architectures are meaningful design points: their per-revolution
    energy ordering is part of the paper's narrative (legacy TPMS is frugal
    but blind, the Cyber Tyre baseline is expensive, the optimized variant
    sits in between)."""

    @pytest.fixture
    def energies(self):
        database = reference_power_database()
        point = OperatingPoint(speed_kmh=60.0)
        return {
            node.name: EnergyEvaluator(node, database).energy_per_revolution_j(point)
            for node in architecture_catalogue().values()
        }

    def test_legacy_is_cheapest(self, energies):
        assert energies["legacy-tpms"] < energies["optimized"]
        assert energies["legacy-tpms"] < energies["baseline"]

    def test_optimized_beats_baseline(self, energies):
        assert energies["optimized"] < energies["baseline"]

    def test_optimized_saving_is_substantial(self, energies):
        saving = 1.0 - energies["optimized"] / energies["baseline"]
        assert saving > 0.2

    def test_legacy_is_order_of_magnitude_cheaper(self, energies):
        assert energies["legacy-tpms"] < 0.2 * energies["baseline"]
