"""Tests for the SensorNode composition and schedule construction."""

from __future__ import annotations

import pytest

from repro.blocks.node import SensorNode
from repro.blocks.radio import RadioConfig
from repro.blocks.sensors import SensorSuiteConfig
from repro.errors import ConfigurationError, ScheduleError, UnknownBlockError
from repro.vehicle.tyre import tyre_from_etrto
from repro.vehicle.wheel import Wheel


class TestArchitectureQueries:
    def test_block_names_cover_the_full_node(self, node):
        names = set(node.block_names())
        assert {"accelerometer", "adc", "mcu", "sram", "rf_tx", "pmu"} <= names

    def test_block_named_lookup(self, node):
        assert node.block_named("mcu").name == "mcu"

    def test_block_named_unknown_raises(self, node):
        with pytest.raises(UnknownBlockError):
            node.block_named("fpga")

    def test_resting_modes_cover_every_block(self, node):
        resting = node.resting_modes()
        assert set(resting) == set(node.block_names())

    def test_lf_receiver_rests_active(self, node):
        assert node.resting_modes()["lf_rx"] == "active"

    def test_required_characterization_matches_blocks(self, node):
        required = node.required_characterization()
        assert set(required) == set(node.block_names())

    def test_validate_database_passes_for_reference_library(self, node, database):
        node.validate_database(database)

    def test_validate_database_fails_for_empty_database(self, node):
        from repro.power.database import PowerDatabase

        with pytest.raises(Exception):
            node.validate_database(PowerDatabase())

    def test_describe_lists_blocks(self, node):
        text = node.describe()
        assert "mcu" in text and "rf_tx" in text

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorNode(name="")


class TestSamplesAndData:
    def test_samples_decrease_with_speed(self, node):
        assert node.samples_per_revolution(20.0) > node.samples_per_revolution(120.0)

    def test_raw_bits_match_samples_and_resolution(self, node):
        speed = 60.0
        assert node.raw_bits_per_revolution(speed) == (
            node.samples_per_revolution(speed) * node.adc.resolution_bits
        )

    def test_node_without_accelerometer_takes_single_sample(self):
        node = SensorNode(sensors=SensorSuiteConfig(use_accelerometer=False))
        assert node.samples_per_revolution(60.0) == 1


class TestScheduleConstruction:
    def test_schedule_period_matches_wheel(self, node):
        schedule = node.schedule_for(60.0)
        assert schedule.period_s == pytest.approx(node.wheel.revolution_period_s(60.0))

    def test_schedule_contains_acquire_and_compute(self, node):
        schedule = node.schedule_for(60.0)
        assert schedule.has_phase("acquire")
        assert schedule.has_phase("compute")

    def test_transmission_follows_radio_interval(self):
        node = SensorNode(radio=RadioConfig(tx_interval_revs=4))
        assert node.schedule_for(60.0, revolution_index=0).has_phase("transmit")
        assert not node.schedule_for(60.0, revolution_index=1).has_phase("transmit")
        assert node.schedule_for(60.0, revolution_index=4).has_phase("transmit")

    def test_tx_startup_precedes_transmission(self, node):
        schedule = node.schedule_for(60.0, revolution_index=0)
        names = [phase.name for phase in schedule.phases]
        assert names.index("tx_startup") < names.index("transmit")

    def test_slow_sensors_refresh_only_on_schedule(self, node):
        refresh = node.schedule_for(60.0, revolution_index=0)
        plain = node.schedule_for(60.0, revolution_index=1)
        refresh_modes = refresh.modes_during(refresh.phase_named("acquire"))
        plain_modes = plain.modes_during(plain.phase_named("acquire"))
        assert refresh_modes["pressure_sensor"] == "active"
        assert plain_modes["pressure_sensor"] == "sleep"

    def test_nvm_write_happens_on_interval(self, node):
        interval = node.memory.nvm_write_interval_revs
        schedule = node.schedule_for(60.0, revolution_index=interval)
        assert schedule.has_phase("nvm_write")
        assert not node.schedule_for(60.0, revolution_index=1).has_phase("nvm_write")

    def test_zero_speed_rejected(self, node):
        with pytest.raises(ConfigurationError):
            node.schedule_for(0.0)

    def test_acquire_phase_shrinks_with_speed(self, node):
        slow = node.schedule_for(30.0).phase_named("acquire").duration_s
        fast = node.schedule_for(150.0).phase_named("acquire").duration_s
        assert fast < slow

    def test_transmit_phase_duration_is_speed_independent(self, node):
        slow = node.schedule_for(30.0).phase_named("transmit").duration_s
        fast = node.schedule_for(150.0).phase_named("transmit").duration_s
        assert slow == pytest.approx(fast)

    def test_busy_time_fits_at_legal_speeds(self, node):
        for speed in (5.0, 30.0, 90.0, 180.0, 250.0):
            schedule = node.schedule_for(speed, revolution_index=0)
            assert schedule.busy_duration_s <= schedule.period_s


class TestPhaseCensus:
    def test_census_weights_are_probabilities(self, node):
        for _, weight in node.phase_census(60.0):
            assert 0.0 < weight <= 1.0

    def test_unconditional_phases_have_weight_one(self, node):
        weights = {phase.name: weight for phase, weight in node.phase_census(60.0)}
        assert weights["acquire"] == 1.0
        assert weights["compute"] == 1.0

    def test_transmit_weight_matches_interval(self):
        node = SensorNode(radio=RadioConfig(tx_interval_revs=4))
        weights = {phase.name: weight for phase, weight in node.phase_census(60.0)}
        assert weights["transmit"] == pytest.approx(0.25)

    def test_slow_refresh_weight_matches_interval(self, node):
        weights = {phase.name: weight for phase, weight in node.phase_census(60.0)}
        assert weights["slow_refresh"] == pytest.approx(
            1.0 / node.sensors.slow_refresh_interval_revs
        )

    def test_refresh_every_revolution_has_no_separate_phase(self):
        node = SensorNode(sensors=SensorSuiteConfig(slow_refresh_interval_revs=1))
        names = [phase.name for phase, _ in node.phase_census(60.0)]
        assert "slow_refresh" not in names

    def test_census_rejects_zero_speed(self, node):
        with pytest.raises(ConfigurationError):
            node.phase_census(0.0)


class TestMaxSustainableSpeed:
    def test_baseline_keeps_up_at_motorway_speeds(self, node):
        assert node.max_sustainable_speed_kmh(upper_bound_kmh=250.0) >= 200.0

    def test_slow_radio_limits_speed(self):
        sluggish = SensorNode(
            radio=RadioConfig(data_rate_bps=2e3, payload_bits=512, tx_interval_revs=1)
        )
        limit = sluggish.max_sustainable_speed_kmh(upper_bound_kmh=400.0)
        assert limit < 400.0
        # The limiting schedule really is infeasible just above the limit.
        with pytest.raises(ScheduleError):
            sluggish.schedule_for(limit + 5.0, revolution_index=0)


class TestDerivedArchitectures:
    def test_renamed(self, node):
        assert node.renamed("variant").name == "variant"
        assert node.name == "baseline"

    def test_with_radio(self, node):
        changed = node.with_radio(RadioConfig(tx_interval_revs=8))
        assert changed.radio.tx_interval_revs == 8
        assert node.radio.tx_interval_revs == 1

    def test_with_wheel_changes_periods(self, node):
        small_wheel = Wheel(tyre=tyre_from_etrto("175/65R14"))
        changed = node.with_wheel(small_wheel)
        assert changed.schedule_for(60.0).period_s < node.schedule_for(60.0).period_s

    def test_adapt_database_reclocks_mcu(self, node, database):
        from repro.conditions.operating_point import OperatingPoint

        half_clock = node.with_mcu(node.mcu.with_clock(8e6))
        adapted = half_clock.adapt_database(database)
        point = OperatingPoint()
        assert adapted.power("mcu", "active", point).dynamic_w == pytest.approx(
            0.5 * database.power("mcu", "active", point).dynamic_w
        )

    def test_adapt_database_leaves_unclocked_blocks_alone(self, node, database):
        from repro.conditions.operating_point import OperatingPoint

        adapted = node.adapt_database(database)
        point = OperatingPoint()
        assert adapted.power("rf_tx", "active", point).total_w == pytest.approx(
            database.power("rf_tx", "active", point).total_w
        )
