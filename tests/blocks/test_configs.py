"""Tests for the per-block configuration objects."""

from __future__ import annotations

import pytest

from repro.blocks.adc import AdcConfig
from repro.blocks.mcu import McuConfig
from repro.blocks.memory import MemoryConfig
from repro.blocks.pmu import PmuConfig
from repro.blocks.radio import RadioConfig
from repro.blocks.sensors import SensorSuiteConfig
from repro.errors import ConfigurationError


class TestSensorSuiteConfig:
    def test_default_suite_has_three_sensors(self):
        blocks = SensorSuiteConfig().blocks()
        assert {b.name for b in blocks} == {
            "pressure_sensor",
            "temperature_sensor",
            "accelerometer",
        }

    def test_tpms_only_suite(self):
        blocks = SensorSuiteConfig(use_accelerometer=False).blocks()
        assert "accelerometer" not in {b.name for b in blocks}

    def test_at_least_one_sensor_required(self):
        with pytest.raises(ConfigurationError):
            SensorSuiteConfig(
                use_pressure=False, use_temperature=False, use_accelerometer=False
            )

    def test_slow_refresh_schedule(self):
        config = SensorSuiteConfig(slow_refresh_interval_revs=8)
        assert config.refreshes_slow_sensors(0)
        assert not config.refreshes_slow_sensors(1)
        assert config.refreshes_slow_sensors(8)

    def test_refresh_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            SensorSuiteConfig().refreshes_slow_sensors(-1)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorSuiteConfig(slow_refresh_interval_revs=0)


class TestAdcConfig:
    def test_block_description_mentions_resolution(self):
        assert "10-bit" in AdcConfig().block().description

    def test_samples_in_window(self):
        config = AdcConfig(sample_rate_hz=100e3)
        assert config.samples_in(1e-3) == 100

    def test_samples_in_window_is_at_least_one(self):
        assert AdcConfig(sample_rate_hz=10.0).samples_in(1e-6) == 1

    def test_bits_for_samples(self):
        assert AdcConfig(resolution_bits=12).bits_for(100) == 1200

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AdcConfig(sample_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            AdcConfig(resolution_bits=32)
        with pytest.raises(ConfigurationError):
            AdcConfig().samples_in(-1.0)
        with pytest.raises(ConfigurationError):
            AdcConfig().bits_for(-1)


class TestMcuConfig:
    def test_compute_cycles_without_compression(self):
        config = McuConfig(cycles_per_sample=50, base_cycles_per_revolution=10_000,
                           compression_ratio=1.0)
        assert config.compute_cycles(100) == 15_000

    def test_compression_adds_cycles(self):
        plain = McuConfig(compression_ratio=1.0)
        compressed = McuConfig(compression_ratio=0.5, compression_cycles_per_bit=1.0)
        assert compressed.compute_cycles(100, raw_bits=1000) > plain.compute_cycles(
            100, raw_bits=1000
        )

    def test_compute_time_scales_with_clock(self):
        fast = McuConfig(clock_hz=16e6)
        slow = McuConfig(clock_hz=8e6)
        assert slow.compute_time_s(500) == pytest.approx(2.0 * fast.compute_time_s(500))

    def test_with_clock(self):
        assert McuConfig().with_clock(4e6).clock_hz == 4e6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            McuConfig(clock_hz=0.0)
        with pytest.raises(ConfigurationError):
            McuConfig(compression_ratio=0.0)
        with pytest.raises(ConfigurationError):
            McuConfig(cycles_per_sample=-1)
        with pytest.raises(ConfigurationError):
            McuConfig().compute_cycles(-1)
        with pytest.raises(ConfigurationError):
            McuConfig().with_clock(-1.0)


class TestMemoryConfig:
    def test_default_blocks(self):
        names = {b.name for b in MemoryConfig().blocks()}
        assert names == {"sram", "nvm"}

    def test_without_nvm(self):
        names = {b.name for b in MemoryConfig(use_nvm=False).blocks()}
        assert names == {"sram"}

    def test_nvm_write_schedule(self):
        config = MemoryConfig(nvm_write_interval_revs=100)
        assert not config.writes_nvm(0)  # never on the very first revolution
        assert config.writes_nvm(100)
        assert not config.writes_nvm(101)

    def test_no_nvm_never_writes(self):
        assert not MemoryConfig(use_nvm=False).writes_nvm(256)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(sram_kib=0)
        with pytest.raises(ConfigurationError):
            MemoryConfig(nvm_write_interval_revs=0)
        with pytest.raises(ConfigurationError):
            MemoryConfig().writes_nvm(-1)


class TestRadioConfig:
    def test_packet_bits(self):
        assert RadioConfig(payload_bits=128, overhead_bits=96).packet_bits == 224

    def test_burst_duration(self):
        config = RadioConfig(payload_bits=100, overhead_bits=100, data_rate_bps=10e3)
        assert config.burst_duration_s() == pytest.approx(0.02)

    def test_burst_duration_with_compression(self):
        config = RadioConfig(payload_bits=100, overhead_bits=100, data_rate_bps=10e3)
        assert config.burst_duration_s(payload_scale=0.5) == pytest.approx(0.015)

    def test_transmits_schedule(self):
        config = RadioConfig(tx_interval_revs=4)
        assert config.transmits(0)
        assert not config.transmits(1)
        assert config.transmits(4)

    def test_every_revolution_transmission(self):
        assert all(RadioConfig(tx_interval_revs=1).transmits(i) for i in range(5))

    def test_blocks_include_wakeup_receiver_by_default(self):
        names = {b.name for b in RadioConfig().blocks()}
        assert names == {"rf_tx", "lf_rx"}

    def test_blocks_without_wakeup_receiver(self):
        names = {b.name for b in RadioConfig(use_wakeup_receiver=False).blocks()}
        assert names == {"rf_tx"}

    def test_energy_per_bit(self):
        config = RadioConfig(data_rate_bps=50e3)
        assert config.energy_per_bit_reference_j(5e-3) == pytest.approx(1e-7)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioConfig(payload_bits=0)
        with pytest.raises(ConfigurationError):
            RadioConfig(data_rate_bps=0.0)
        with pytest.raises(ConfigurationError):
            RadioConfig(tx_interval_revs=0)
        with pytest.raises(ConfigurationError):
            RadioConfig().burst_duration_s(payload_scale=0.0)
        with pytest.raises(ConfigurationError):
            RadioConfig().transmits(-1)
        with pytest.raises(ConfigurationError):
            RadioConfig().energy_per_bit_reference_j(0.0)


class TestPmuConfig:
    def test_block_is_always_on_by_default(self):
        assert PmuConfig().block().always_on

    def test_referred_to_storage_divides_by_efficiency(self):
        config = PmuConfig(regulator_efficiency=0.8)
        assert config.referred_to_storage(8.0) == pytest.approx(10.0)

    def test_perfect_regulator_is_identity(self):
        assert PmuConfig(regulator_efficiency=1.0).referred_to_storage(3.0) == 3.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PmuConfig(regulator_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            PmuConfig().referred_to_storage(-1.0)
