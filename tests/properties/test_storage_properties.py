"""Property-based tests (hypothesis) for the storage ledger.

The mutating :class:`StorageElement` is the scalar reference for the energy
bookkeeping; the pure :func:`repro.scavenger.storage.trajectory` kernel must
replay it bit for bit.  Properties covered: the charge never leaves
``[0, capacity]``, ``deposit`` reports exactly what fit (the overflow is the
exact complement), ``withdraw`` is atomic (full success, or a drain-to-zero
brown-out — never a partial withdrawal that reports success), and the
trajectory kernel equals a step-by-step scalar replay including the restart
hysteresis.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scavenger.storage import StorageElement, trajectory

energies = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=3600.0, allow_nan=False)


def make_storage(initial_fraction: float = 0.5) -> StorageElement:
    return StorageElement(
        capacity_j=0.5,
        initial_charge_j=0.5 * initial_fraction,
        charge_efficiency=0.95,
        discharge_efficiency=0.90,
        self_discharge_w=1e-5,
        minimum_operating_j=0.02,
        restart_level_j=0.05,
    )


# Mixed op streams: (kind, amount) with kind 0=deposit, 1=withdraw, 2=leak.
operations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), energies), max_size=60
)


class TestLedgerInvariants:
    @given(ops=operations)
    @settings(max_examples=200)
    def test_charge_always_within_bounds(self, ops):
        storage = make_storage()
        for kind, amount in ops:
            if kind == 0:
                storage.deposit(amount)
            elif kind == 1:
                storage.withdraw(amount)
            else:
                storage.leak(amount * 100.0)
            assert 0.0 <= storage.charge_j <= storage.capacity_j

    @given(initial=st.floats(min_value=0.0, max_value=1.0), energy=energies)
    def test_deposit_returns_exactly_what_fit(self, initial, energy):
        storage = make_storage(initial_fraction=initial)
        before = storage.charge_j
        banked = storage.deposit(energy)
        # The banked amount is exactly the post-efficiency energy clipped to
        # the headroom, and the charge moves by exactly that amount — so the
        # overflow (what the deposit did NOT return) is exact by
        # construction.
        assert banked == min(energy * storage.charge_efficiency, 0.5 - before)
        assert storage.charge_j == before + banked
        assert energy * storage.charge_efficiency - banked >= 0.0

    @given(initial=st.floats(min_value=0.0, max_value=1.0), energy=energies)
    def test_withdraw_is_atomic(self, initial, energy):
        storage = make_storage(initial_fraction=initial)
        before = storage.charge_j
        required = energy / storage.discharge_efficiency
        success = storage.withdraw(energy)
        if success:
            # Full withdrawal: the charge drops by exactly the required
            # amount, never by part of it.
            assert required <= before
            assert storage.charge_j == before - required
        else:
            # Shortfall: brown-out semantics, the element drains to zero.
            assert required > before
            assert storage.charge_j == 0.0

    @given(initial=st.floats(min_value=0.0, max_value=1.0), duration=durations)
    def test_leak_never_overdraws(self, initial, duration):
        storage = make_storage(initial_fraction=initial)
        before = storage.charge_j
        loss = storage.leak(duration)
        assert loss == min(before, storage.self_discharge_w * duration)
        assert storage.charge_j == before - loss


harvest_arrays = st.lists(
    st.floats(min_value=0.0, max_value=5e-4), min_size=0, max_size=80
)
load_arrays = st.lists(st.floats(min_value=0.0, max_value=5e-4), min_size=0, max_size=80)


class TestTrajectoryEqualsScalarReplay:
    @given(
        harvest=harvest_arrays,
        load=load_arrays,
        leak_s=st.floats(min_value=0.0, max_value=10.0),
        initial=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=150)
    def test_trajectory_replays_the_mutating_element_bit_for_bit(
        self, harvest, load, leak_s, initial
    ):
        count = min(len(harvest), len(load))
        harvest, load = harvest[:count], load[:count]
        storage = make_storage(initial_fraction=initial)
        traj = trajectory(storage, harvest, load, leak_s)

        # Scalar replay: the emulator's step semantics spelled out with the
        # reference StorageElement methods.
        replay = make_storage(initial_fraction=initial)
        active = not replay.is_depleted
        brownouts = 0
        for i in range(count):
            if not active and replay.can_restart:
                active = True
            banked = replay.deposit(harvest[i])
            assert banked == traj.banked_j[i]
            if active:
                assert traj.attempted[i]
                if replay.withdraw(load[i]):
                    assert traj.withdrew[i]
                    assert traj.drawn_j[i] == load[i]
                else:
                    active = False
                    brownouts += 1
                    assert not traj.withdrew[i]
                    assert traj.drawn_j[i] == 0.0
            else:
                assert not traj.attempted[i]
            replay.leak(leak_s)
            assert traj.charge_j[i] == replay.charge_j
            assert bool(traj.active[i]) == active
        assert traj.brownout_events == brownouts
        assert traj.final_charge_j == replay.charge_j
        assert len(traj) == count

    @given(harvest=harvest_arrays)
    def test_trajectory_charge_stays_within_bounds(self, harvest):
        storage = make_storage()
        traj = trajectory(storage, harvest, np.zeros(len(harvest)), 1.0)
        assert np.all(traj.charge_j >= 0.0)
        assert np.all(traj.charge_j <= storage.capacity_j)

    def test_mismatched_lengths_rejected(self):
        import pytest

        from repro.errors import EmulationError

        with pytest.raises(EmulationError):
            trajectory(make_storage(), [1e-6, 1e-6], [1e-6], 1.0)

    def test_negative_inputs_rejected(self):
        import pytest

        from repro.errors import EmulationError

        storage = make_storage()
        with pytest.raises(EmulationError):
            trajectory(storage, [-1e-9], [0.0], 1.0)
        with pytest.raises(EmulationError):
            trajectory(storage, [0.0], [-1e-9], 1.0)
        with pytest.raises(EmulationError):
            trajectory(storage, [0.0], [0.0], -1.0)

    def test_out_of_range_initial_charge_rejected(self):
        import pytest

        from repro.errors import EmulationError

        storage = make_storage()
        with pytest.raises(EmulationError):
            trajectory(storage, [1e-6], [0.0], 1.0, initial_charge_j=-0.1)
        with pytest.raises(EmulationError):
            trajectory(
                storage, [1e-6], [0.0], 1.0, initial_charge_j=storage.capacity_j * 2.0
            )

    def test_element_state_is_untouched(self):
        storage = make_storage()
        before = storage.charge_j
        trajectory(storage, [1e-4] * 5, [2e-4] * 5, 1.0)
        assert storage.charge_j == before
