"""Property-based tests (hypothesis) on core invariants.

These cover the arithmetic backbone of the methodology: power models scale
the way CMOS physics says they must, energy bookkeeping never goes negative,
the wheel-round iterator always covers the cycle, storage never exceeds its
bounds, and the balance analysis responds monotonically to its inputs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conditions.operating_point import OperatingPoint
from repro.power.models import DynamicPowerModel, LeakagePowerModel, PowerBreakdown
from repro.scavenger.piezoelectric import PiezoelectricScavenger
from repro.scavenger.storage import StorageElement
from repro.timing.wheel_round import IdleInterval, WheelRound, iter_wheel_rounds
from repro.vehicle.drive_cycle import constant_cruise
from repro.vehicle.tyre import Tyre
from repro.vehicle.wheel import Wheel

# ---------------------------------------------------------------------------
# Power models
# ---------------------------------------------------------------------------

voltages = st.floats(min_value=0.6, max_value=2.0)
temperatures = st.floats(min_value=-40.0, max_value=150.0)
powers = st.floats(min_value=1e-9, max_value=1e-1)
speeds = st.floats(min_value=5.0, max_value=300.0)


class TestDynamicModelProperties:
    @given(reference=powers, voltage=voltages)
    def test_dynamic_power_is_non_negative(self, reference, voltage):
        model = DynamicPowerModel(reference_power_w=reference, reference_voltage_v=1.2)
        assert model.power_w(voltage_v=voltage) >= 0.0

    @given(reference=powers, low=voltages, high=voltages)
    def test_dynamic_power_is_monotone_in_voltage(self, reference, low, high):
        model = DynamicPowerModel(reference_power_w=reference, reference_voltage_v=1.2)
        if low > high:
            low, high = high, low
        assert model.power_w(voltage_v=low) <= model.power_w(voltage_v=high) + 1e-18

    @given(reference=powers, voltage=voltages)
    def test_dynamic_voltage_scaling_is_exactly_quadratic(self, reference, voltage):
        model = DynamicPowerModel(reference_power_w=reference, reference_voltage_v=1.0)
        assert model.power_w(voltage_v=voltage) == pytest.approx(
            reference * voltage**2, rel=1e-9
        )


class TestLeakageModelProperties:
    @given(reference=powers, cold=temperatures, hot=temperatures)
    def test_leakage_is_monotone_in_temperature(self, reference, cold, hot):
        model = LeakagePowerModel(reference_power_w=reference)
        if cold > hot:
            cold, hot = hot, cold
        assert model.power_w(temperature_c=cold) <= model.power_w(temperature_c=hot) + 1e-18

    @given(reference=powers, temperature=temperatures, voltage=voltages)
    def test_leakage_is_never_negative(self, reference, temperature, voltage):
        model = LeakagePowerModel(reference_power_w=reference)
        assert model.power_w(temperature_c=temperature, voltage_v=voltage) >= 0.0

    @given(reference=powers, delta=st.floats(min_value=0.0, max_value=50.0))
    def test_doubling_property(self, reference, delta):
        model = LeakagePowerModel(reference_power_w=reference, doubling_celsius=18.0)
        ratio = model.temperature_factor(25.0 + delta) / model.temperature_factor(25.0)
        assert ratio == pytest.approx(2.0 ** (delta / 18.0), rel=1e-9)


class TestBreakdownProperties:
    @given(
        dynamic=st.floats(min_value=0.0, max_value=1.0),
        static=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_static_fraction_is_bounded(self, dynamic, static):
        breakdown = PowerBreakdown(dynamic_w=dynamic, static_w=static)
        assert 0.0 <= breakdown.static_fraction <= 1.0

    @given(
        a=st.floats(min_value=0.0, max_value=1.0),
        b=st.floats(min_value=0.0, max_value=1.0),
        c=st.floats(min_value=0.0, max_value=1.0),
        d=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_addition_is_componentwise(self, a, b, c, d):
        total = PowerBreakdown(a, b) + PowerBreakdown(c, d)
        assert total.dynamic_w == pytest.approx(a + c)
        assert total.static_w == pytest.approx(b + d)


# ---------------------------------------------------------------------------
# Vehicle substrate
# ---------------------------------------------------------------------------


class TestWheelProperties:
    @given(speed=speeds)
    def test_period_times_rate_is_one(self, speed):
        wheel = Wheel()
        assert wheel.revolution_period_s(speed) * wheel.revolutions_per_second(
            speed
        ) == pytest.approx(1.0)

    @given(
        width=st.floats(min_value=0.135, max_value=0.335),
        aspect=st.floats(min_value=0.25, max_value=0.80),
        rim=st.floats(min_value=0.30, max_value=0.60),
    )
    def test_rolling_radius_below_unloaded_radius(self, width, aspect, rim):
        tyre = Tyre(width_m=width, aspect_ratio=aspect, rim_diameter_m=rim)
        assert 0.0 < tyre.rolling_radius_m < tyre.unloaded_radius_m

    @given(speed=speeds, duration=st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=25, deadline=None)
    def test_wheel_round_iterator_covers_the_cycle(self, speed, duration):
        wheel = Wheel()
        cycle = constant_cruise(speed, duration_s=duration)
        covered = sum(
            unit.period_s if isinstance(unit, WheelRound) else unit.duration_s
            for unit in iter_wheel_rounds(cycle, wheel)
        )
        assert covered == pytest.approx(duration, rel=1e-6)

    @given(speed=speeds, duration=st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=25, deadline=None)
    def test_wheel_round_units_never_overlap(self, speed, duration):
        wheel = Wheel()
        cycle = constant_cruise(speed, duration_s=duration)
        cursor = 0.0
        for unit in iter_wheel_rounds(cycle, wheel):
            start = unit.start_s
            assert start >= cursor - 1e-9
            cursor = unit.end_s if isinstance(unit, (WheelRound, IdleInterval)) else cursor


# ---------------------------------------------------------------------------
# Scavenger and storage
# ---------------------------------------------------------------------------


class TestScavengerProperties:
    @given(speed=speeds, factor=st.floats(min_value=0.1, max_value=10.0))
    def test_size_scaling_is_exactly_linear(self, speed, factor):
        scavenger = PiezoelectricScavenger()
        assert scavenger.scaled(factor).energy_per_revolution_j(speed) == pytest.approx(
            factor * scavenger.energy_per_revolution_j(speed), rel=1e-9
        )

    @given(low=speeds, high=speeds)
    def test_energy_is_monotone_in_speed(self, low, high):
        scavenger = PiezoelectricScavenger()
        if low > high:
            low, high = high, low
        assert scavenger.energy_per_revolution_j(low) <= scavenger.energy_per_revolution_j(
            high
        ) + 1e-18


class TestStorageProperties:
    @given(
        deposits=st.lists(st.floats(min_value=0.0, max_value=0.05), max_size=30),
        withdrawals=st.lists(st.floats(min_value=0.0, max_value=0.05), max_size=30),
    )
    def test_charge_stays_within_bounds(self, deposits, withdrawals):
        storage = StorageElement(capacity_j=0.5, initial_charge_j=0.25)
        for amount in deposits:
            storage.deposit(amount)
            assert 0.0 <= storage.charge_j <= storage.capacity_j + 1e-12
        for amount in withdrawals:
            storage.withdraw(amount)
            assert 0.0 <= storage.charge_j <= storage.capacity_j + 1e-12

    @given(amount=st.floats(min_value=0.0, max_value=1.0))
    def test_deposit_never_stores_more_than_offered(self, amount):
        storage = StorageElement(capacity_j=1.0, initial_charge_j=0.0)
        stored = storage.deposit(amount)
        assert stored <= amount + 1e-12


# ---------------------------------------------------------------------------
# Evaluation invariants (slower: bounded example counts)
# ---------------------------------------------------------------------------


class TestEvaluatorProperties:
    @given(speed=st.floats(min_value=10.0, max_value=200.0))
    @settings(max_examples=20, deadline=None)
    def test_energy_per_revolution_is_positive_and_finite(self, speed):
        from repro.blocks import baseline_node
        from repro.core.evaluator import EnergyEvaluator
        from repro.power import reference_power_database

        evaluator = EnergyEvaluator(baseline_node(), reference_power_database())
        energy = evaluator.energy_per_revolution_j(OperatingPoint(speed_kmh=speed))
        assert energy > 0.0
        assert math.isfinite(energy)

    @given(
        speed=st.floats(min_value=10.0, max_value=200.0),
        temperature=st.floats(min_value=-40.0, max_value=125.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_dynamic_and_static_split_is_consistent(self, speed, temperature):
        from repro.blocks import baseline_node
        from repro.core.evaluator import EnergyEvaluator
        from repro.power import reference_power_database

        evaluator = EnergyEvaluator(baseline_node(), reference_power_database())
        report = evaluator.average_report(
            OperatingPoint(speed_kmh=speed, temperature_c=temperature)
        )
        assert report.total_energy_j == pytest.approx(
            report.dynamic_energy_j + report.static_energy_j
        )
        assert report.dynamic_energy_j >= 0.0
        assert report.static_energy_j >= 0.0
