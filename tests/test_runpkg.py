"""Run packages: write, validate, and every one-line failure mode."""

from __future__ import annotations

import json

import pytest

from repro.errors import PackageError
from repro.runpkg import (
    environment_stamp,
    file_sha256,
    validate_run_package,
    write_run_package,
)


def _write(tmp_path, **overrides):
    source = tmp_path / "rows.json"
    source.write_text('{"rows": [1, 2, 3]}\n', encoding="utf-8")
    arguments = {
        "kind": "test",
        "name": "unit",
        "spec_document": {"name": "unit", "seed": 3},
        "seed": 3,
        "kpis": {"speedup": 4.5, "coverage_pct": 99.0},
        "floors": {"speedup": 2.0},
        "artifacts": {"rows.json": source},
    }
    arguments.update(overrides)
    return write_run_package(tmp_path / "pkg", **arguments)


class TestEnvironmentStamp:
    def test_stamp_carries_runtime_context(self):
        stamp = environment_stamp(workers=4, backend="thread")
        assert {"python", "numpy", "platform", "cpu_count"} <= set(stamp)
        assert stamp["workers"] == 4
        assert stamp["backend"] == "thread"

    def test_pool_context_is_optional(self):
        assert "workers" not in environment_stamp()


class TestWrite:
    def test_round_trip_validates(self, tmp_path):
        manifest_path = _write(tmp_path)
        summary = validate_run_package(manifest_path.parent)
        assert summary["kind"] == "test"
        assert summary["name"] == "unit"
        assert summary["artifacts"] == 1
        assert summary["kpis"] == 2
        assert summary["floors"] == 1

    def test_manifest_records_digests_and_environment(self, tmp_path):
        manifest_path = _write(tmp_path)
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        entry = manifest["artifacts"]["rows.json"]
        assert entry["sha256"] == file_sha256(manifest_path.parent / "rows.json")
        assert manifest["environment"]["python"]
        assert manifest["seed"] == 3

    def test_run_id_is_deterministic_for_the_same_run(self, tmp_path):
        first = json.loads(_write(tmp_path).read_text(encoding="utf-8"))
        second = json.loads(_write(tmp_path).read_text(encoding="utf-8"))
        assert first["run_id"] == second["run_id"]

    def test_floor_without_kpi_is_rejected_at_write(self, tmp_path):
        with pytest.raises(PackageError, match="no matching KPI"):
            _write(tmp_path, floors={"ghost": 1.0})

    def test_non_finite_kpi_is_rejected_at_write(self, tmp_path):
        with pytest.raises(PackageError, match="finite number"):
            _write(tmp_path, kpis={"speedup": float("nan")}, floors={})

    def test_missing_artifact_source_is_rejected(self, tmp_path):
        with pytest.raises(PackageError, match="does not exist"):
            _write(tmp_path, artifacts={"rows.json": tmp_path / "ghost.json"})

    def test_non_bare_artifact_name_is_rejected(self, tmp_path):
        source = tmp_path / "rows.json"
        source.write_text("{}", encoding="utf-8")
        with pytest.raises(PackageError, match="bare file name"):
            _write(tmp_path, artifacts={"nested/rows.json": source})


class TestValidate:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PackageError, match="not a run package"):
            validate_run_package(tmp_path)

    def test_malformed_manifest(self, tmp_path):
        package = _write(tmp_path).parent
        (package / "package.json").write_text("{ nope", encoding="utf-8")
        with pytest.raises(PackageError, match="not valid JSON"):
            validate_run_package(package)

    def test_unsupported_version(self, tmp_path):
        package = _write(tmp_path).parent
        (package / "package.json").write_text(
            json.dumps({"run_package": 99}), encoding="utf-8"
        )
        with pytest.raises(PackageError, match="unsupported layout"):
            validate_run_package(package)

    def test_tampered_artifact_fails_digest(self, tmp_path):
        package = _write(tmp_path).parent
        (package / "rows.json").write_text('{"rows": [1, 2, 3, 4]}\n', encoding="utf-8")
        with pytest.raises(PackageError, match="digest mismatch"):
            validate_run_package(package)

    def test_missing_artifact_file(self, tmp_path):
        package = _write(tmp_path).parent
        (package / "rows.json").unlink()
        with pytest.raises(PackageError, match="missing from package"):
            validate_run_package(package)

    def test_violated_kpi_floor_is_one_line(self, tmp_path):
        package = _write(tmp_path).parent
        manifest = json.loads((package / "package.json").read_text(encoding="utf-8"))
        manifest["kpis"]["speedup"] = 1.25
        (package / "package.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(PackageError, match=r"KPI floor violated: speedup = 1\.25 < 2"):
            validate_run_package(package)

    def test_floor_added_without_kpi_fails_validation(self, tmp_path):
        package = _write(tmp_path).parent
        manifest = json.loads((package / "package.json").read_text(encoding="utf-8"))
        manifest["floors"]["ghost"] = 1.0
        (package / "package.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(PackageError, match="no matching KPI"):
            validate_run_package(package)

    def test_kpi_exactly_at_floor_passes(self, tmp_path):
        package = _write(tmp_path, kpis={"speedup": 2.0}, floors={"speedup": 2.0}).parent
        validate_run_package(package)
