"""The single-sourced canonical digest (``repro.digest``).

Checkpoint manifests, run-package ``run_id``s and the serving layer's
result-store keys all hash documents through this module, so its byte-level
output is pinned here: a refactor that changes any digest silently orphans
every existing checkpoint directory and run package.
"""

from __future__ import annotations

import json

import pytest

from repro.digest import canonical_digest, canonical_json, sha256_hex
from repro.errors import CheckpointError
from repro.runpkg import validate_run_package, write_run_package
from repro.scenario.checkpoint import CheckpointStore

#: A representative checkpoint-style run key and its pinned digest.  The
#: value was produced by the pre-extraction implementation in
#: ``repro/scenario/checkpoint.py`` (json.dumps(sort_keys=True) → sha256)
#: and MUST NOT change: existing checkpoint directories are keyed by it.
_PINNED_KEY = {
    "kind": "fleet",
    "seed": 42,
    "fleet": {"name": "x", "vehicles": 10, "nested": {"b": 2, "a": 1}},
    "record_interval_s": 1.0,
}
_PINNED_DIGEST = "cefe0e240b91d34f9d3bd02197de99c1a3a624ebdf1b798a0447727c4dd15f16"

#: A representative run-package digest seed and its pinned run_id suffix
#: (the pre-extraction ``runpkg`` discipline: default=str for non-JSON).
_PINNED_RUN_SEED = {"kind": "fleet", "name": "n", "spec": {"a": 1}, "seed": 3, "kpis": {"k": 1.5}}
_PINNED_RUN_ID12 = "621c90612ddc"


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == canonical_json(
            {"a": {"c": 3, "d": 2}, "b": 1}
        )

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_rejects_non_json_without_default(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_default_serializer(self):
        text = canonical_json({"p": 1 + 2j}, default=str)
        assert json.loads(text) == {"p": str(1 + 2j)}


class TestPinnedDigests:
    def test_checkpoint_key_digest_is_pinned(self):
        assert canonical_digest(_PINNED_KEY) == _PINNED_DIGEST

    def test_sha256_hex_matches_text_and_bytes(self):
        text = canonical_json(_PINNED_KEY)
        assert sha256_hex(text) == sha256_hex(text.encode("utf-8")) == _PINNED_DIGEST

    def test_checkpoint_store_uses_the_shared_digest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", _PINNED_KEY)
        assert store.key_sha256 == _PINNED_DIGEST
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["key_sha256"] == _PINNED_DIGEST

    def test_checkpoint_rejects_undigestable_key(self, tmp_path):
        with pytest.raises(CheckpointError, match="not canonical JSON"):
            CheckpointStore(tmp_path / "ckpt", {"bad": float("inf")})

    def test_run_package_id_is_pinned(self, tmp_path):
        write_run_package(
            tmp_path,
            kind=_PINNED_RUN_SEED["kind"],
            name=_PINNED_RUN_SEED["name"],
            spec_document=_PINNED_RUN_SEED["spec"],
            seed=_PINNED_RUN_SEED["seed"],
            kpis=_PINNED_RUN_SEED["kpis"],
        )
        summary = validate_run_package(tmp_path)
        assert summary["run_id"] == f"n-{_PINNED_RUN_ID12}"
        assert canonical_digest(_PINNED_RUN_SEED, default=str)[:12] == _PINNED_RUN_ID12
