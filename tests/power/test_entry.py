"""Tests for power-database entries."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.errors import ConfigurationError
from repro.power.entry import make_entry


@pytest.fixture
def entry():
    return make_entry(
        "mcu",
        "active",
        dynamic_uw=2400.0,
        leakage_uw=14.0,
        clock_frequency_hz=16e6,
    )


class TestMakeEntry:
    def test_reference_powers_in_watts(self, entry):
        assert entry.dynamic.reference_power_w == pytest.approx(2.4e-3)
        assert entry.leakage.reference_power_w == pytest.approx(14e-6)

    def test_key(self, entry):
        assert entry.key == ("mcu", "active")

    def test_rejects_negative_powers(self):
        with pytest.raises(ConfigurationError):
            make_entry("mcu", "active", dynamic_uw=-1.0, leakage_uw=0.0)

    def test_rejects_empty_names(self):
        with pytest.raises(ConfigurationError):
            make_entry("", "active", 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            make_entry("mcu", "", 1.0, 1.0)

    def test_own_rail_entry(self):
        rf = make_entry(
            "rf_tx", "active", 7800.0, 2.5, rail_voltage_v=1.8, tracks_core_supply=False
        )
        assert rf.rail_voltage_v == 1.8
        assert not rf.tracks_core_supply


class TestBreakdownEvaluation:
    def test_nominal_breakdown(self, entry):
        breakdown = entry.breakdown(OperatingPoint())
        assert breakdown.dynamic_w == pytest.approx(2.4e-3)
        assert breakdown.static_w == pytest.approx(14e-6)

    def test_total_power(self, entry):
        point = OperatingPoint()
        assert entry.total_power_w(point) == pytest.approx(
            entry.breakdown(point).total_w
        )

    def test_hot_point_increases_leakage(self, entry):
        hot = entry.breakdown(OperatingPoint(temperature_c=125.0))
        nominal = entry.breakdown(OperatingPoint())
        assert hot.static_w > nominal.static_w
        assert hot.dynamic_w == pytest.approx(nominal.dynamic_w)

    def test_core_supply_tracking(self, entry):
        from repro.conditions.supply import SupplyCondition, SupplyRail

        low_rail = SupplyRail(name="vdd_core", nominal_v=1.0, tolerance=0.0)
        low = entry.breakdown(OperatingPoint().with_supply(SupplyCondition(rail=low_rail)))
        nominal = entry.breakdown(OperatingPoint())
        assert low.dynamic_w < nominal.dynamic_w

    def test_own_rail_entry_ignores_core_supply(self):
        from repro.conditions.supply import SupplyCondition, SupplyRail

        rf = make_entry(
            "rf_tx", "active", 7800.0, 2.5, rail_voltage_v=1.8, tracks_core_supply=False
        )
        low_rail = SupplyRail(name="vdd_core", nominal_v=0.9, tolerance=0.0)
        scaled = rf.breakdown(OperatingPoint().with_supply(SupplyCondition(rail=low_rail)))
        nominal = rf.breakdown(OperatingPoint())
        assert scaled.dynamic_w == pytest.approx(nominal.dynamic_w)

    def test_activity_scales_dynamic_only(self, entry):
        half = entry.breakdown(OperatingPoint(), activity=0.5)
        full = entry.breakdown(OperatingPoint(), activity=1.0)
        assert half.dynamic_w == pytest.approx(0.5 * full.dynamic_w)
        assert half.static_w == pytest.approx(full.static_w)


class TestEntryTransforms:
    def test_scaled_dynamic(self, entry):
        scaled = entry.scaled(dynamic_factor=0.5)
        assert scaled.dynamic.reference_power_w == pytest.approx(
            0.5 * entry.dynamic.reference_power_w
        )
        assert scaled.leakage.reference_power_w == entry.leakage.reference_power_w

    def test_scaled_static(self, entry):
        scaled = entry.scaled(static_factor=0.1)
        assert scaled.leakage.reference_power_w == pytest.approx(
            0.1 * entry.leakage.reference_power_w
        )

    def test_scaled_note_is_appended(self, entry):
        scaled = entry.scaled(static_factor=0.1, note="power gated")
        assert "power gated" in scaled.notes

    def test_scaled_rejects_negative(self, entry):
        with pytest.raises(ConfigurationError):
            entry.scaled(dynamic_factor=-1.0)

    def test_original_entry_is_unchanged_by_scaling(self, entry):
        entry.scaled(dynamic_factor=0.5)
        assert entry.dynamic.reference_power_w == pytest.approx(2.4e-3)

    def test_with_clock_halves_dynamic_power(self, entry):
        slowed = entry.with_clock(8e6)
        nominal = OperatingPoint()
        assert slowed.breakdown(nominal).dynamic_w == pytest.approx(
            0.5 * entry.breakdown(nominal).dynamic_w
        )

    def test_with_clock_keeps_leakage(self, entry):
        slowed = entry.with_clock(8e6)
        nominal = OperatingPoint()
        assert slowed.breakdown(nominal).static_w == pytest.approx(
            entry.breakdown(nominal).static_w
        )

    def test_with_clock_rejects_negative(self, entry):
        with pytest.raises(ConfigurationError):
            entry.with_clock(-1.0)

    def test_with_rail_voltage(self, entry):
        changed = entry.with_rail_voltage(1.0)
        assert changed.rail_voltage_v == 1.0

    def test_describe_contains_block_and_mode(self, entry):
        text = entry.describe(OperatingPoint())
        assert "mcu/active" in text
