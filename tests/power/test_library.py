"""Tests for the reference characterization library."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.power.library import (
    high_performance_process_database,
    low_power_process_database,
    reference_power_database,
)


@pytest.fixture
def database():
    return reference_power_database()


class TestCoverage:
    EXPECTED_BLOCKS = {
        "pressure_sensor",
        "temperature_sensor",
        "accelerometer",
        "adc",
        "mcu",
        "sram",
        "nvm",
        "rf_tx",
        "lf_rx",
        "pmu",
    }

    def test_all_architecture_blocks_present(self, database):
        assert set(database.blocks) == self.EXPECTED_BLOCKS

    def test_every_block_has_a_sleep_or_active_mode(self, database):
        for block in database.blocks:
            modes = set(database.modes_of(block))
            assert modes & {"sleep", "active"}

    def test_baseline_architecture_is_fully_characterized(self, database):
        from repro.blocks import baseline_node

        baseline_node().validate_database(database)

    def test_optimized_architecture_is_fully_characterized(self, database):
        from repro.blocks import optimized_node

        optimized_node().validate_database(database)

    def test_legacy_architecture_is_fully_characterized(self, database):
        from repro.blocks import legacy_tpms_node

        legacy_tpms_node().validate_database(database)

    def test_fresh_instance_on_every_call(self):
        assert reference_power_database() is not reference_power_database()


class TestMemoization:
    """The entry rows are built once; the databases stay independent."""

    def test_entry_rows_are_cached(self):
        from repro.power.library import _reference_entries

        assert _reference_entries() is _reference_entries()

    def test_two_lookups_share_no_mutable_state(self):
        first = reference_power_database()
        second = reference_power_database()

        first.remove("mcu", "active")
        assert ("mcu", "active") not in first
        assert ("mcu", "active") in second

        point = OperatingPoint()
        entry = second.entry("mcu", "active")
        first.add(entry.scaled(dynamic_factor=0.5, static_factor=0.5))
        assert first.power("mcu", "active", point).total_w < (
            second.power("mcu", "active", point).total_w
        )
        # A third lookup is unaffected by either mutation.
        third = reference_power_database()
        assert third.power("mcu", "active", point).total_w == pytest.approx(
            second.power("mcu", "active", point).total_w
        )

    def test_mutated_copy_does_not_poison_the_cache(self):
        mutated = reference_power_database()
        mutated.remove("nvm", "active")
        fresh = reference_power_database()
        assert ("nvm", "active") in fresh


class TestMagnitudes:
    """Sanity checks that the synthetic figures stay in the published ranges."""

    def test_radio_burst_dominates_active_power(self, database):
        point = OperatingPoint()
        tx = database.power("rf_tx", "active", point).total_w
        mcu = database.power("mcu", "active", point).total_w
        assert tx > mcu

    def test_rf_tx_active_is_milliwatt_class(self, database):
        tx = database.power("rf_tx", "active", OperatingPoint()).total_w
        assert 3e-3 <= tx <= 20e-3

    def test_mcu_active_is_milliwatt_class(self, database):
        mcu = database.power("mcu", "active", OperatingPoint()).total_w
        assert 1e-3 <= mcu <= 5e-3

    def test_sleep_modes_are_microwatt_class(self, database):
        point = OperatingPoint()
        for block in database.blocks:
            if "sleep" in database.modes_of(block):
                sleep = database.power(block, "sleep", point).total_w
                assert sleep < 20e-6, block

    def test_sleep_floor_of_whole_node_is_tens_of_microwatts(self, database):
        from repro.blocks import baseline_node

        node = baseline_node()
        floor = database.total_power(node.resting_modes(), OperatingPoint()).total_w
        assert 5e-6 <= floor <= 50e-6

    def test_active_modes_draw_more_than_sleep_modes(self, database):
        point = OperatingPoint()
        for block in database.blocks:
            modes = set(database.modes_of(block))
            if {"active", "sleep"} <= modes:
                assert (
                    database.power(block, "active", point).total_w
                    > database.power(block, "sleep", point).total_w
                ), block

    def test_lf_receiver_is_always_on_friendly(self, database):
        lf = database.power("lf_rx", "active", OperatingPoint()).total_w
        assert lf < 10e-6


class TestProcessVariants:
    def test_low_power_variant_leaks_less(self):
        point = OperatingPoint()
        reference = reference_power_database().power("mcu", "sleep", point).static_w
        low_power = low_power_process_database().power("mcu", "sleep", point).static_w
        assert low_power < reference

    def test_high_performance_variant_leaks_more(self):
        point = OperatingPoint()
        reference = reference_power_database().power("mcu", "sleep", point).static_w
        high_perf = high_performance_process_database().power("mcu", "sleep", point).static_w
        assert high_perf > reference

    def test_variant_names_differ(self):
        assert low_power_process_database().name != reference_power_database().name
