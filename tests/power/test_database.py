"""Tests for the power database (the "dynamic spreadsheet")."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.errors import CharacterizationError, ConfigurationError
from repro.power.database import PowerDatabase
from repro.power.entry import make_entry


def small_database() -> PowerDatabase:
    return PowerDatabase.from_entries(
        [
            make_entry("mcu", "active", 2400.0, 14.0),
            make_entry("mcu", "sleep", 0.6, 3.2),
            make_entry("rf_tx", "active", 7800.0, 2.5, rail_voltage_v=1.8,
                       tracks_core_supply=False),
            make_entry("rf_tx", "sleep", 0.0, 0.5, rail_voltage_v=1.8,
                       tracks_core_supply=False),
        ],
        name="tiny",
    )


class TestConstruction:
    def test_from_entries(self):
        database = small_database()
        assert len(database) == 4
        assert database.name == "tiny"

    def test_duplicate_entry_rejected(self):
        database = small_database()
        with pytest.raises(ConfigurationError):
            database.add(make_entry("mcu", "active", 1.0, 1.0))

    def test_overwrite_flag_allows_replacement(self):
        database = small_database()
        database.add(make_entry("mcu", "active", 1.0, 1.0), overwrite=True)
        assert database.entry("mcu", "active").dynamic.reference_power_w == pytest.approx(1e-6)

    def test_remove(self):
        database = small_database()
        database.remove("mcu", "sleep")
        assert ("mcu", "sleep") not in database

    def test_remove_missing_raises(self):
        with pytest.raises(CharacterizationError):
            small_database().remove("mcu", "off")


class TestQueries:
    def test_blocks_listing(self):
        assert small_database().blocks == ["mcu", "rf_tx"]

    def test_modes_of(self):
        assert small_database().modes_of("mcu") == ["active", "sleep"]

    def test_modes_of_unknown_block(self):
        with pytest.raises(CharacterizationError):
            small_database().modes_of("adc")

    def test_entry_lookup(self):
        entry = small_database().entry("rf_tx", "active")
        assert entry.block == "rf_tx"

    def test_missing_mode_error_lists_available_modes(self):
        with pytest.raises(CharacterizationError, match="active"):
            small_database().entry("mcu", "boost")

    def test_missing_block_error_lists_known_blocks(self):
        with pytest.raises(CharacterizationError, match="mcu"):
            small_database().entry("adc", "active")

    def test_entries_for(self):
        entries = small_database().entries_for("mcu")
        assert [entry.mode for entry in entries] == ["active", "sleep"]

    def test_power_query(self):
        breakdown = small_database().power("mcu", "active", OperatingPoint())
        assert breakdown.dynamic_w == pytest.approx(2.4e-3)

    def test_total_power_of_mode_assignment(self):
        database = small_database()
        total = database.total_power(
            {"mcu": "active", "rf_tx": "sleep"}, OperatingPoint()
        )
        expected = (
            database.power("mcu", "active", OperatingPoint()).total_w
            + database.power("rf_tx", "sleep", OperatingPoint()).total_w
        )
        assert total.total_w == pytest.approx(expected)

    def test_iteration(self):
        keys = {entry.key for entry in small_database()}
        assert ("mcu", "active") in keys
        assert len(keys) == 4


class TestTransformations:
    def test_copy_is_independent(self):
        database = small_database()
        clone = database.copy()
        clone.remove("mcu", "sleep")
        assert ("mcu", "sleep") in database

    def test_scale_block_dynamic(self):
        database = small_database()
        scaled = database.scale_block("mcu", dynamic_factor=0.5)
        original = database.power("mcu", "active", OperatingPoint()).dynamic_w
        assert scaled.power("mcu", "active", OperatingPoint()).dynamic_w == pytest.approx(
            0.5 * original
        )

    def test_scale_block_static_restricted_to_modes(self):
        database = small_database()
        scaled = database.scale_block("mcu", static_factor=0.1, modes=("sleep",))
        point = OperatingPoint()
        assert scaled.power("mcu", "sleep", point).static_w == pytest.approx(
            0.1 * database.power("mcu", "sleep", point).static_w
        )
        assert scaled.power("mcu", "active", point).static_w == pytest.approx(
            database.power("mcu", "active", point).static_w
        )

    def test_scale_block_unknown_block_raises(self):
        with pytest.raises(CharacterizationError):
            small_database().scale_block("adc", dynamic_factor=0.5)

    def test_scale_block_no_matching_mode_raises(self):
        with pytest.raises(CharacterizationError):
            small_database().scale_block("mcu", dynamic_factor=0.5, modes=("idle",))

    def test_scale_block_does_not_mutate_original(self):
        database = small_database()
        database.scale_block("mcu", dynamic_factor=0.5)
        assert database.power("mcu", "active", OperatingPoint()).dynamic_w == pytest.approx(
            2.4e-3
        )

    def test_replace_entry(self):
        database = small_database()
        replaced = database.replace_entry(make_entry("mcu", "active", 1000.0, 10.0))
        assert replaced.power("mcu", "active", OperatingPoint()).dynamic_w == pytest.approx(1e-3)

    def test_replace_missing_entry_raises(self):
        with pytest.raises(CharacterizationError):
            small_database().replace_entry(make_entry("adc", "active", 1.0, 1.0))

    def test_map_entries(self):
        doubled = small_database().map_entries(lambda e: e.scaled(dynamic_factor=2.0))
        assert doubled.power("mcu", "active", OperatingPoint()).dynamic_w == pytest.approx(
            4.8e-3
        )

    def test_merge_without_conflicts(self):
        database = small_database()
        other = PowerDatabase.from_entries([make_entry("adc", "active", 110.0, 0.8)])
        merged = database.merged_with(other)
        assert "adc" in merged.blocks

    def test_merge_conflict_raises_without_overwrite(self):
        database = small_database()
        other = PowerDatabase.from_entries([make_entry("mcu", "active", 1.0, 1.0)])
        with pytest.raises(ConfigurationError):
            database.merged_with(other)

    def test_merge_conflict_with_overwrite(self):
        database = small_database()
        other = PowerDatabase.from_entries([make_entry("mcu", "active", 1.0, 1.0)])
        merged = database.merged_with(other, overwrite=True)
        assert merged.power("mcu", "active", OperatingPoint()).dynamic_w == pytest.approx(1e-6)


class TestTableAndValidation:
    def test_table_has_one_row_per_entry(self):
        rows = small_database().table(OperatingPoint())
        assert len(rows) == 4
        assert {row["block"] for row in rows} == {"mcu", "rf_tx"}

    def test_table_filtered_by_block(self):
        rows = small_database().table(OperatingPoint(), blocks=["mcu"])
        assert all(row["block"] == "mcu" for row in rows)

    def test_table_total_is_dynamic_plus_static(self):
        for row in small_database().table(OperatingPoint()):
            assert row["total_uw"] == pytest.approx(row["dynamic_uw"] + row["static_uw"])

    def test_validate_against_passes_for_covered_modes(self):
        small_database().validate_against({"mcu": ("active", "sleep")})

    def test_validate_against_reports_missing_modes(self):
        with pytest.raises(CharacterizationError, match="mcu/idle"):
            small_database().validate_against({"mcu": ("active", "idle")})


class TestBlockIndex:
    """The lazy per-block index must stay consistent through mutations."""

    def test_index_is_built_lazily(self):
        database = small_database()
        assert database._block_index is None
        database.modes_of("mcu")
        assert database._block_index is not None

    def test_add_invalidates_index(self):
        database = small_database()
        assert database.modes_of("mcu") == ["active", "sleep"]
        database.add(make_entry("mcu", "idle", 10.0, 5.0))
        assert database.modes_of("mcu") == ["active", "idle", "sleep"]
        assert database.blocks == ["mcu", "rf_tx"]

    def test_remove_invalidates_index(self):
        database = small_database()
        assert database.modes_of("rf_tx") == ["active", "sleep"]
        database.remove("rf_tx", "active")
        assert database.modes_of("rf_tx") == ["sleep"]
        database.remove("rf_tx", "sleep")
        with pytest.raises(CharacterizationError):
            database.modes_of("rf_tx")
        assert database.blocks == ["mcu"]

    def test_copy_starts_with_a_fresh_index(self):
        database = small_database()
        database.modes_of("mcu")  # build the original's index
        clone = database.copy()
        assert clone._block_index is None
        clone.add(make_entry("adc", "active", 50.0, 1.0))
        assert clone.blocks == ["adc", "mcu", "rf_tx"]
        # The original is unaffected by mutations of the clone.
        assert database.blocks == ["mcu", "rf_tx"]

    def test_transformations_see_current_entries(self):
        database = small_database()
        database.modes_of("mcu")
        scaled = database.scale_block("mcu", dynamic_factor=0.5)
        assert scaled.modes_of("mcu") == ["active", "sleep"]
        merged = database.merged_with(
            PowerDatabase.from_entries([make_entry("adc", "active", 5.0, 0.2)])
        )
        assert merged.blocks == ["adc", "mcu", "rf_tx"]

    def test_entry_error_message_uses_index(self):
        database = small_database()
        with pytest.raises(CharacterizationError, match="characterized modes"):
            database.entry("mcu", "hibernate")
        with pytest.raises(CharacterizationError, match="known blocks"):
            database.entry("fpga", "active")
