"""Tests for the dynamic and leakage power models."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.conditions.process import ProcessCorner, ProcessVariation
from repro.errors import ConfigurationError
from repro.power.models import (
    DynamicPowerModel,
    LeakagePowerModel,
    PowerBreakdown,
    breakdown_at,
    energy_j,
    equivalent_current_a,
    half_life_to_doubling,
)


class TestPowerBreakdown:
    def test_total_is_sum(self):
        breakdown = PowerBreakdown(dynamic_w=2e-3, static_w=1e-3)
        assert breakdown.total_w == pytest.approx(3e-3)

    def test_static_fraction(self):
        breakdown = PowerBreakdown(dynamic_w=3e-3, static_w=1e-3)
        assert breakdown.static_fraction == pytest.approx(0.25)

    def test_static_fraction_of_zero_power(self):
        assert PowerBreakdown.zero().static_fraction == 0.0

    def test_addition(self):
        total = PowerBreakdown(1e-3, 2e-3) + PowerBreakdown(3e-3, 4e-3)
        assert total.dynamic_w == pytest.approx(4e-3)
        assert total.static_w == pytest.approx(6e-3)

    def test_scaling(self):
        scaled = PowerBreakdown(2e-3, 4e-3).scaled(dynamic_factor=0.5, static_factor=0.25)
        assert scaled.dynamic_w == pytest.approx(1e-3)
        assert scaled.static_w == pytest.approx(1e-3)

    def test_negative_components_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerBreakdown(dynamic_w=-1.0, static_w=0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerBreakdown(1.0, 1.0).scaled(dynamic_factor=-1.0)


class TestDynamicPowerModel:
    def test_reference_condition_returns_reference_power(self):
        model = DynamicPowerModel(reference_power_w=1e-3, reference_voltage_v=1.2)
        assert model.power_w() == pytest.approx(1e-3)

    def test_quadratic_voltage_scaling(self):
        model = DynamicPowerModel(reference_power_w=1e-3, reference_voltage_v=1.0)
        assert model.power_w(voltage_v=2.0) == pytest.approx(4e-3)
        assert model.power_w(voltage_v=0.5) == pytest.approx(0.25e-3)

    def test_linear_frequency_scaling(self):
        model = DynamicPowerModel(
            reference_power_w=1e-3, reference_frequency_hz=16e6
        )
        assert model.power_w(frequency_hz=8e6) == pytest.approx(0.5e-3)
        assert model.power_w(frequency_hz=32e6) == pytest.approx(2e-3)

    def test_clockless_block_ignores_frequency(self):
        model = DynamicPowerModel(reference_power_w=1e-3, reference_frequency_hz=0.0)
        assert model.power_w(frequency_hz=123.0) == pytest.approx(1e-3)

    def test_activity_scaling(self):
        model = DynamicPowerModel(reference_power_w=1e-3)
        assert model.power_w(activity=0.5) == pytest.approx(0.5e-3)
        assert model.power_w(activity=0.0) == 0.0

    def test_process_factor(self):
        model = DynamicPowerModel(reference_power_w=1e-3)
        assert model.power_w(process_factor=1.05) == pytest.approx(1.05e-3)

    def test_negative_inputs_rejected(self):
        model = DynamicPowerModel(reference_power_w=1e-3)
        with pytest.raises(ConfigurationError):
            model.power_w(activity=-1.0)
        with pytest.raises(ConfigurationError):
            model.power_w(voltage_v=0.0)
        with pytest.raises(ConfigurationError):
            DynamicPowerModel(reference_power_w=-1.0)


class TestLeakagePowerModel:
    def test_reference_condition_returns_reference_power(self):
        model = LeakagePowerModel(reference_power_w=1e-6)
        assert model.power_w() == pytest.approx(1e-6)

    def test_doubling_temperature(self):
        model = LeakagePowerModel(
            reference_power_w=1e-6, reference_temperature_c=25.0, doubling_celsius=18.0
        )
        assert model.power_w(temperature_c=43.0) == pytest.approx(2e-6)
        assert model.power_w(temperature_c=61.0) == pytest.approx(4e-6)

    def test_cold_reduces_leakage(self):
        model = LeakagePowerModel(reference_power_w=1e-6)
        assert model.power_w(temperature_c=-40.0) < 1e-6

    def test_hot_corner_increase_is_large_but_bounded(self):
        model = LeakagePowerModel(reference_power_w=1e-6, doubling_celsius=18.0)
        ratio = model.power_w(temperature_c=125.0) / model.power_w(temperature_c=25.0)
        assert 20.0 <= ratio <= 100.0

    def test_voltage_dependence_is_monotonic(self):
        model = LeakagePowerModel(reference_power_w=1e-6, reference_voltage_v=1.2)
        assert model.power_w(voltage_v=1.0) < model.power_w(voltage_v=1.2)
        assert model.power_w(voltage_v=1.4) > model.power_w(voltage_v=1.2)

    def test_voltage_factor_never_negative(self):
        model = LeakagePowerModel(
            reference_power_w=1e-6, reference_voltage_v=1.2, dibl_coefficient=5.0
        )
        assert model.power_w(voltage_v=0.1) >= 0.0

    def test_process_factor(self):
        model = LeakagePowerModel(reference_power_w=1e-6)
        assert model.power_w(process_factor=2.6) == pytest.approx(2.6e-6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LeakagePowerModel(reference_power_w=1e-6, doubling_celsius=0.0)
        with pytest.raises(ConfigurationError):
            LeakagePowerModel(reference_power_w=-1e-6)


class TestBreakdownAt:
    def _models(self):
        dynamic = DynamicPowerModel(reference_power_w=1e-3, reference_voltage_v=1.2)
        leakage = LeakagePowerModel(reference_power_w=1e-6, reference_voltage_v=1.2)
        return dynamic, leakage

    def test_nominal_point(self):
        dynamic, leakage = self._models()
        breakdown = breakdown_at(dynamic, leakage, OperatingPoint())
        assert breakdown.dynamic_w == pytest.approx(1e-3)
        assert breakdown.static_w == pytest.approx(1e-6)

    def test_fast_corner_increases_both(self):
        dynamic, leakage = self._models()
        fast = OperatingPoint(process=ProcessVariation(corner=ProcessCorner.FAST))
        breakdown = breakdown_at(dynamic, leakage, fast)
        assert breakdown.dynamic_w > 1e-3
        assert breakdown.static_w > 1e-6

    def test_voltage_override_bypasses_core_supply(self):
        dynamic, leakage = self._models()
        breakdown = breakdown_at(
            dynamic, leakage, OperatingPoint(), voltage_override_v=1.2
        )
        assert breakdown.dynamic_w == pytest.approx(1e-3)

    def test_hot_point_increases_leakage_only(self):
        dynamic, leakage = self._models()
        hot = OperatingPoint(temperature_c=125.0)
        breakdown = breakdown_at(dynamic, leakage, hot)
        assert breakdown.dynamic_w == pytest.approx(1e-3)
        assert breakdown.static_w > 1e-6


class TestHelpers:
    def test_energy(self):
        assert energy_j(2e-3, 10.0) == pytest.approx(0.02)

    def test_energy_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            energy_j(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            energy_j(1.0, -1.0)

    def test_equivalent_current(self):
        assert equivalent_current_a(1.2e-3, 1.2) == pytest.approx(1e-3)

    def test_equivalent_current_rejects_zero_voltage(self):
        with pytest.raises(ConfigurationError):
            equivalent_current_a(1.0, 0.0)

    def test_half_life_to_doubling(self):
        assert half_life_to_doubling(18.0, 18.0) == pytest.approx(2.0)
        assert half_life_to_doubling(18.0, 0.0) == pytest.approx(1.0)
        assert half_life_to_doubling(18.0, -18.0) == pytest.approx(0.5)
