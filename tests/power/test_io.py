"""Tests for CSV/JSON round-tripping of power databases."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.errors import ExportError
from repro.power.io import (
    database_from_csv,
    database_from_json,
    database_to_csv,
    database_to_json,
)
from repro.power.library import reference_power_database


@pytest.fixture
def database():
    return reference_power_database()


def assert_same_power(original, restored):
    """Every entry of the restored database reproduces the original power."""
    point = OperatingPoint(temperature_c=85.0, speed_kmh=90.0)
    assert set(e.key for e in original) == set(e.key for e in restored)
    for entry in original:
        a = original.power(entry.block, entry.mode, point)
        b = restored.power(entry.block, entry.mode, point)
        assert a.dynamic_w == pytest.approx(b.dynamic_w)
        assert a.static_w == pytest.approx(b.static_w)


class TestCsvRoundTrip:
    def test_round_trip_preserves_power(self, database, tmp_path):
        path = database_to_csv(database, tmp_path / "db.csv")
        restored = database_from_csv(path)
        assert_same_power(database, restored)

    def test_round_trip_preserves_entry_count(self, database, tmp_path):
        path = database_to_csv(database, tmp_path / "db.csv")
        assert len(database_from_csv(path)) == len(database)

    def test_name_defaults_to_stem(self, database, tmp_path):
        path = database_to_csv(database, tmp_path / "my_node.csv")
        assert database_from_csv(path).name == "my_node"

    def test_explicit_name(self, database, tmp_path):
        path = database_to_csv(database, tmp_path / "db.csv")
        assert database_from_csv(path, name="renamed").name == "renamed"

    def test_missing_file_raises_export_error(self, tmp_path):
        with pytest.raises(ExportError):
            database_from_csv(tmp_path / "does_not_exist.csv")

    def test_malformed_record_raises_export_error(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("block,mode,dynamic_ref_w\nmcu,active,not_a_number\n")
        with pytest.raises(ExportError):
            database_from_csv(bad)


class TestJsonRoundTrip:
    def test_round_trip_preserves_power(self, database, tmp_path):
        path = database_to_json(database, tmp_path / "db.json")
        restored = database_from_json(path)
        assert_same_power(database, restored)

    def test_round_trip_preserves_name(self, database, tmp_path):
        path = database_to_json(database, tmp_path / "db.json")
        assert database_from_json(path).name == database.name

    def test_missing_file_raises_export_error(self, tmp_path):
        with pytest.raises(ExportError):
            database_from_json(tmp_path / "nope.json")

    def test_non_database_json_raises_export_error(self, tmp_path):
        target = tmp_path / "other.json"
        target.write_text('{"foo": 1}')
        with pytest.raises(ExportError):
            database_from_json(target)

    def test_invalid_json_raises_export_error(self, tmp_path):
        target = tmp_path / "broken.json"
        target.write_text("{not json")
        with pytest.raises(ExportError):
            database_from_json(target)


class TestCrossFormat:
    def test_csv_and_json_restore_identical_databases(self, database, tmp_path):
        csv_restored = database_from_csv(database_to_csv(database, tmp_path / "db.csv"))
        json_restored = database_from_json(database_to_json(database, tmp_path / "db.json"))
        assert_same_power(csv_restored, json_restored)
