"""Scalar <-> compiled-table equivalence tests for the power layer.

The compiled table is only correct if it reproduces the scalar
``PowerEntry.breakdown`` path bit-for-bit (well within 1e-9 relative) across
the whole condition space: temperatures, supply corners, activity factors and
process corners, for rows on the core supply and rows on their own rails.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.conditions.process import ProcessCorner, ProcessVariation
from repro.conditions.supply import SupplyCondition, SupplyRail
from repro.errors import CharacterizationError, ConfigurationError
from repro.power.compiled import CompiledPowerTable
from repro.power.database import PowerDatabase
from repro.power.entry import make_entry
from repro.power.library import reference_power_database

TEMPERATURES_C = (-40.0, -5.0, 25.0, 60.0, 125.0)
SUPPLIES_V = (1.0, 1.08, 1.2, 1.32)
ACTIVITIES = (0.0, 0.25, 1.0, 1.7)
CORNERS = tuple(ProcessCorner)


def condition_points():
    """Cross product of working conditions used by the equivalence sweeps."""
    points = []
    for temperature in TEMPERATURES_C:
        for supply in SUPPLIES_V:
            for corner in CORNERS:
                rail = SupplyRail(name="vdd_core", nominal_v=supply, tolerance=0.0)
                points.append(
                    OperatingPoint(
                        temperature_c=temperature,
                        supply=SupplyCondition(rail=rail),
                        process=ProcessVariation(corner=corner),
                        speed_kmh=60.0,
                    )
                )
    return points


@pytest.fixture(scope="module")
def database() -> PowerDatabase:
    return reference_power_database()


@pytest.fixture(scope="module")
def table(database) -> CompiledPowerTable:
    return CompiledPowerTable.from_database(database)


class TestConstruction:
    def test_one_row_per_entry(self, database, table):
        assert len(table) == len(database)
        assert set(table.keys) == {entry.key for entry in database}

    def test_row_lookup(self, database, table):
        for entry in database:
            row = table.row(entry.block, entry.mode)
            assert table.keys[row] == entry.key

    def test_missing_row_raises(self, table):
        with pytest.raises(CharacterizationError):
            table.row("no-such-block", "active")

    def test_empty_table_rejected(self):
        with pytest.raises(CharacterizationError):
            CompiledPowerTable([])

    def test_columns_are_read_only(self, table):
        with pytest.raises(ValueError):
            table.dynamic_reference_w[0] = 1.0


class TestScalarEquivalence:
    """Property-style: compiled rows match PowerEntry.breakdown to 1e-9."""

    def test_breakdown_matches_across_condition_space(self, database, table):
        points = condition_points()
        supply = np.array([p.supply_voltage for p in points])
        temperature = np.array([p.temperature_c for p in points])
        dynamic_factor = np.array([p.process.dynamic_factor for p in points])
        leakage_factor = np.array([p.process.leakage_factor for p in points])
        rows = np.arange(len(table))
        dynamic, static = table.breakdown_components(
            rows,
            supply,
            temperature,
            process_dynamic=dynamic_factor,
            process_leakage=leakage_factor,
        )
        for row, key in enumerate(table.keys):
            entry = database.entry(*key)
            for column, point in enumerate(points):
                scalar = entry.breakdown(point)
                assert dynamic[row, column] == pytest.approx(
                    scalar.dynamic_w, rel=1e-9, abs=1e-30
                )
                assert static[row, column] == pytest.approx(
                    scalar.static_w, rel=1e-9, abs=1e-30
                )

    def test_activity_factors_match(self, database, table):
        point = OperatingPoint(temperature_c=85.0, speed_kmh=60.0)
        rows = np.arange(len(table))
        for activity in ACTIVITIES:
            dynamic = table.dynamic_power_w(
                rows,
                point.supply_voltage,
                process_dynamic=point.process.dynamic_factor,
                activity=activity,
            )
            for row, key in enumerate(table.keys):
                scalar = database.entry(*key).breakdown(point, activity=activity)
                assert dynamic[row, 0] == pytest.approx(
                    scalar.dynamic_w, rel=1e-9, abs=1e-30
                )

    def test_own_rail_rows_ignore_core_supply(self, table):
        """Rows not tracking the core supply are flat across supply sweeps."""
        own_rail_rows = np.flatnonzero(~table.tracks_core_supply)
        if own_rail_rows.size == 0:
            pytest.skip("reference database has no own-rail entries")
        dynamic = table.dynamic_power_w(own_rail_rows, np.array(SUPPLIES_V))
        assert np.allclose(dynamic, dynamic[:, :1], rtol=0.0, atol=0.0)

    def test_total_power_matches_database_total(self, database, table):
        point = OperatingPoint(temperature_c=50.0, speed_kmh=60.0)
        modes: dict[str, str] = {}
        for block, mode in table.keys:
            modes.setdefault(block, mode)
        keys = list(modes.items())
        rows = table.rows(keys)
        total = table.total_power_w(
            rows,
            point.supply_voltage,
            point.temperature_c,
            process_dynamic=point.process.dynamic_factor,
            process_leakage=point.process.leakage_factor,
        )
        scalar = database.total_power(modes, point)
        assert total[0] == pytest.approx(scalar.total_w, rel=1e-9)


class TestValidation:
    def test_non_positive_supply_rejected(self, table):
        with pytest.raises(ConfigurationError):
            table.dynamic_power_w(np.arange(len(table)), 0.0)

    def test_negative_activity_rejected(self, table):
        with pytest.raises(ConfigurationError):
            table.dynamic_power_w(np.arange(len(table)), 1.2, activity=-0.5)

    def test_negative_process_factor_rejected(self, table):
        with pytest.raises(ConfigurationError):
            table.static_power_w(np.arange(len(table)), 1.2, 25.0, process_leakage=-1.0)

    def test_duplicate_keys_rejected(self):
        entry = make_entry("mcu", "active", dynamic_uw=100.0, leakage_uw=1.0)
        with pytest.raises(CharacterizationError):
            CompiledPowerTable([entry, entry])
