"""Tests for drive cycles and their builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.vehicle.drive_cycle import (
    DriveCycle,
    DriveCyclePhase,
    constant_cruise,
    cycle_from_samples,
    highway_cycle,
    nedc_like_cycle,
    ramp_cycle,
    urban_cycle,
)


class TestDriveCyclePhase:
    def test_linear_interpolation(self):
        phase = DriveCyclePhase(duration_s=10.0, start_kmh=0.0, end_kmh=100.0)
        assert phase.speed_at(5.0) == pytest.approx(50.0)

    def test_clamped_at_ends(self):
        phase = DriveCyclePhase(duration_s=10.0, start_kmh=20.0, end_kmh=80.0)
        assert phase.speed_at(-1.0) == 20.0
        assert phase.speed_at(100.0) == 80.0

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DriveCyclePhase(duration_s=0.0, start_kmh=0.0, end_kmh=10.0)
        with pytest.raises(ConfigurationError):
            DriveCyclePhase(duration_s=1.0, start_kmh=-5.0, end_kmh=10.0)


class TestDriveCycle:
    def test_duration_is_sum_of_phases(self):
        cycle = DriveCycle(
            phases=[
                DriveCyclePhase(10.0, 0.0, 50.0),
                DriveCyclePhase(20.0, 50.0, 50.0),
            ]
        )
        assert cycle.duration_s == 30.0

    def test_speed_lookup_spans_phases(self):
        cycle = DriveCycle(
            phases=[
                DriveCyclePhase(10.0, 0.0, 100.0),
                DriveCyclePhase(10.0, 100.0, 100.0),
            ]
        )
        assert cycle.speed_at(5.0) == pytest.approx(50.0)
        assert cycle.speed_at(15.0) == pytest.approx(100.0)

    def test_speed_clamped_outside_cycle(self):
        cycle = constant_cruise(80.0, duration_s=100.0)
        assert cycle.speed_at(-10.0) == 80.0
        assert cycle.speed_at(1e6) == 80.0

    def test_empty_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            DriveCycle(phases=[])

    def test_sample_grid(self):
        cycle = constant_cruise(50.0, duration_s=10.0)
        times, speeds = cycle.sample(1.0)
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(10.0)
        assert np.all(speeds == 50.0)

    def test_sample_rejects_bad_step(self):
        with pytest.raises(ConfigurationError):
            constant_cruise(50.0).sample(0.0)

    def test_iter_steps_matches_sample(self):
        cycle = ramp_cycle(0.0, 100.0, ramp_duration_s=10.0, hold_duration_s=0.1)
        listed = list(cycle.iter_steps(1.0))
        times, speeds = cycle.sample(1.0)
        assert len(listed) == len(times)
        assert listed[3][1] == pytest.approx(float(speeds[3]))

    def test_mean_speed_of_constant_cycle(self):
        assert constant_cruise(70.0).mean_speed_kmh() == pytest.approx(70.0)

    def test_max_speed(self):
        assert nedc_like_cycle().max_speed_kmh() == pytest.approx(120.0)

    def test_distance_of_constant_cruise(self):
        cycle = constant_cruise(36.0, duration_s=100.0)  # 10 m/s for 100 s
        assert cycle.distance_m() == pytest.approx(1000.0, rel=0.01)

    def test_moving_fraction_of_constant_cruise_is_one(self):
        assert constant_cruise(50.0).moving_fraction() == pytest.approx(1.0)

    def test_moving_fraction_of_urban_cycle_below_one(self):
        assert urban_cycle().moving_fraction() < 1.0

    def test_concatenation_adds_durations(self):
        a = constant_cruise(30.0, duration_s=10.0)
        b = constant_cruise(60.0, duration_s=20.0)
        joined = a.concatenated(b)
        assert joined.duration_s == pytest.approx(30.0)
        assert joined.speed_at(25.0) == pytest.approx(60.0)

    def test_repetition(self):
        cycle = constant_cruise(40.0, duration_s=5.0).repeated(3)
        assert cycle.duration_s == pytest.approx(15.0)

    def test_repetition_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            constant_cruise(40.0).repeated(0)


class TestCycleBuilders:
    def test_constant_cruise_rejects_negative_speed(self):
        with pytest.raises(ConfigurationError):
            constant_cruise(-10.0)

    def test_urban_cycle_starts_and_ends_stopped(self):
        cycle = urban_cycle()
        assert cycle.speed_at(0.0) == 0.0
        assert cycle.speed_at(cycle.duration_s) == 0.0

    def test_urban_cycle_repetition_scales_duration(self):
        assert urban_cycle(repetitions=2).duration_s == pytest.approx(
            2.0 * urban_cycle(repetitions=1).duration_s
        )

    def test_urban_cycle_rejects_zero_repetitions(self):
        with pytest.raises(ConfigurationError):
            urban_cycle(repetitions=0)

    def test_highway_cycle_reaches_cruise_speed(self):
        cycle = highway_cycle(cruise_kmh=110.0)
        assert cycle.max_speed_kmh() == pytest.approx(125.0)

    def test_nedc_like_cycle_has_urban_and_extra_urban_parts(self):
        cycle = nedc_like_cycle()
        assert cycle.duration_s > 900.0
        assert cycle.max_speed_kmh() == pytest.approx(120.0)
        # Urban part dominates the early portion: low mean speed there.
        early = np.mean([cycle.speed_at(t) for t in range(0, 300, 5)])
        late = np.mean(
            [cycle.speed_at(t) for t in range(int(cycle.duration_s) - 300, int(cycle.duration_s), 5)]
        )
        assert late > early

    def test_ramp_cycle_monotonic_during_ramp(self):
        cycle = ramp_cycle(20.0, 120.0, ramp_duration_s=100.0, hold_duration_s=10.0)
        speeds = [cycle.speed_at(t) for t in range(0, 101, 10)]
        assert speeds == sorted(speeds)


class TestCycleFromSamples:
    def test_reconstructs_sampled_points(self):
        times = [0.0, 10.0, 20.0]
        speeds = [0.0, 50.0, 20.0]
        cycle = cycle_from_samples(times, speeds)
        assert cycle.speed_at(10.0) == pytest.approx(50.0)
        assert cycle.speed_at(15.0) == pytest.approx(35.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            cycle_from_samples([0.0, 1.0], [10.0])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ConfigurationError):
            cycle_from_samples([0.0, 1.0, 1.0], [0.0, 10.0, 20.0])

    def test_single_point_rejected(self):
        with pytest.raises(ConfigurationError):
            cycle_from_samples([0.0], [10.0])
