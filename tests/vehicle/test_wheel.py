"""Tests for wheel kinematics: the speed <-> wheel-round bridge."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.vehicle.tyre import tyre_from_etrto
from repro.vehicle.wheel import Wheel


@pytest.fixture
def wheel():
    return Wheel()


class TestRevolutionPeriod:
    def test_period_at_60_kmh_is_about_a_tenth_of_a_second(self, wheel):
        period = wheel.revolution_period_s(60.0)
        assert 0.10 <= period <= 0.13

    def test_period_halves_when_speed_doubles(self, wheel):
        assert wheel.revolution_period_s(40.0) == pytest.approx(
            2.0 * wheel.revolution_period_s(80.0)
        )

    def test_period_times_rate_is_unity(self, wheel):
        speed = 87.3
        assert wheel.revolution_period_s(speed) * wheel.revolutions_per_second(
            speed
        ) == pytest.approx(1.0)

    def test_zero_speed_has_no_period(self, wheel):
        with pytest.raises(ConfigurationError):
            wheel.revolution_period_s(0.0)

    def test_speed_for_period_is_inverse(self, wheel):
        period = wheel.revolution_period_s(123.0)
        assert wheel.speed_for_period(period) == pytest.approx(123.0)

    def test_speed_for_period_rejects_non_positive(self, wheel):
        with pytest.raises(ConfigurationError):
            wheel.speed_for_period(0.0)


class TestRevolutionRate:
    def test_rate_is_zero_at_standstill(self, wheel):
        assert wheel.revolutions_per_second(0.0) == 0.0

    def test_rate_scales_linearly_with_speed(self, wheel):
        assert wheel.revolutions_per_second(100.0) == pytest.approx(
            2.0 * wheel.revolutions_per_second(50.0)
        )

    def test_rate_at_120_kmh_is_plausible(self, wheel):
        # ~33.3 m/s over ~1.95 m circumference -> roughly 17 rev/s.
        assert 15.0 <= wheel.revolutions_per_second(120.0) <= 19.0

    def test_negative_speed_rejected(self, wheel):
        with pytest.raises(ConfigurationError):
            wheel.revolutions_per_second(-5.0)


class TestDistanceAndAcceleration:
    def test_revolutions_over_circumference_is_one(self, wheel):
        circumference = wheel.tyre.rolling_circumference_m
        assert wheel.revolutions_over(circumference) == pytest.approx(1.0)

    def test_revolutions_over_rejects_negative(self, wheel):
        with pytest.raises(ConfigurationError):
            wheel.revolutions_over(-1.0)

    def test_centripetal_acceleration_grows_quadratically(self, wheel):
        assert wheel.centripetal_acceleration(100.0) == pytest.approx(
            4.0 * wheel.centripetal_acceleration(50.0)
        )

    def test_centripetal_acceleration_magnitude(self, wheel):
        # At 100 km/h the liner sees on the order of hundreds of g.
        acceleration = wheel.centripetal_acceleration(100.0)
        assert 1500.0 <= acceleration <= 4000.0

    def test_angular_rate_consistent_with_rev_rate(self, wheel):
        import math

        speed = 72.0
        assert wheel.angular_rate_rad_s(speed) == pytest.approx(
            wheel.revolutions_per_second(speed) * 2.0 * math.pi
        )


class TestContactPatchDuration:
    def test_duration_shrinks_with_speed(self, wheel):
        assert wheel.contact_patch_duration_s(30.0) > wheel.contact_patch_duration_s(90.0)

    def test_duration_requires_motion(self, wheel):
        with pytest.raises(ConfigurationError):
            wheel.contact_patch_duration_s(0.0)

    def test_duration_magnitude_at_60(self, wheel):
        # 12 cm patch at 16.7 m/s is about 7 ms.
        assert 0.005 <= wheel.contact_patch_duration_s(60.0) <= 0.010


class TestDifferentTyres:
    def test_smaller_tyre_spins_faster(self):
        small = Wheel(tyre=tyre_from_etrto("175/65R14"))
        large = Wheel(tyre=tyre_from_etrto("255/55R19"))
        assert small.revolutions_per_second(80.0) > large.revolutions_per_second(80.0)


class TestVectorizedPeriods:
    def test_matches_scalar_periods(self):
        import numpy as np

        wheel = Wheel()
        speeds = np.array([5.0, 60.0, 133.7])
        vectorized = wheel.revolution_periods_s(speeds)
        for speed, period in zip(speeds, vectorized):
            assert period == wheel.revolution_period_s(float(speed))

    def test_rejects_non_positive_speeds(self):
        import numpy as np

        with pytest.raises(ConfigurationError):
            Wheel().revolution_periods_s(np.array([60.0, 0.0]))
