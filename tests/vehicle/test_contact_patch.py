"""Tests for the contact-patch acquisition-window model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.vehicle.contact_patch import ContactPatchModel
from repro.vehicle.wheel import Wheel


@pytest.fixture
def model():
    return ContactPatchModel()


class TestAcquisitionWindow:
    def test_window_is_guard_times_patch_transit(self, model):
        speed = 60.0
        expected = model.wheel.contact_patch_duration_s(speed) * model.guard_factor
        assert model.acquisition_window_s(speed) == pytest.approx(expected)

    def test_window_shrinks_with_speed(self, model):
        assert model.acquisition_window_s(30.0) > model.acquisition_window_s(120.0)

    def test_duty_cycle_is_speed_independent_to_first_order(self, model):
        assert model.acquisition_duty_cycle(20.0) == pytest.approx(
            model.acquisition_duty_cycle(150.0), rel=1e-9
        )

    def test_duty_cycle_below_one(self, model):
        assert 0.0 < model.acquisition_duty_cycle(60.0) < 1.0

    def test_guard_factor_must_not_shrink_the_window(self):
        with pytest.raises(ConfigurationError):
            ContactPatchModel(guard_factor=0.5)

    def test_phase_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            ContactPatchModel(phase_fraction=1.5)


class TestSampleCounts:
    def test_samples_scale_with_rate(self, model):
        low = model.samples_per_revolution(60.0, sample_rate_hz=10e3)
        high = model.samples_per_revolution(60.0, sample_rate_hz=100e3)
        assert high > low

    def test_samples_decrease_with_speed(self, model):
        assert model.samples_per_revolution(20.0, 100e3) > model.samples_per_revolution(
            160.0, 100e3
        )

    def test_at_least_one_sample(self, model):
        assert model.samples_per_revolution(250.0, sample_rate_hz=10.0) == 1

    def test_rejects_non_positive_rate(self, model):
        with pytest.raises(ConfigurationError):
            model.samples_per_revolution(60.0, 0.0)


class TestWindowPlacement:
    def test_window_fits_inside_revolution(self, model):
        for speed in (10.0, 60.0, 180.0):
            window = model.window(speed, 100e3)
            period = model.wheel.revolution_period_s(speed)
            assert window.start_s >= 0.0
            assert window.start_s + window.duration_s <= period + 1e-12

    def test_window_samples_match_samples_per_revolution(self, model):
        window = model.window(60.0, 100e3)
        assert window.samples == model.samples_per_revolution(60.0, 100e3)

    def test_custom_wheel_is_used(self):
        from repro.vehicle.tyre import tyre_from_etrto

        big = ContactPatchModel(wheel=Wheel(tyre=tyre_from_etrto("255/55R19")))
        small = ContactPatchModel(wheel=Wheel(tyre=tyre_from_etrto("175/65R14")))
        # Same patch length but the big tyre turns more slowly, so the window
        # is a smaller fraction of its (longer) revolution.
        assert big.acquisition_duty_cycle(60.0) < small.acquisition_duty_cycle(60.0)
