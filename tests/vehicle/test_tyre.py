"""Tests for tyre geometry and ETRTO parsing."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.vehicle.tyre import REFERENCE_TYRE, Tyre, tyre_from_etrto


class TestTyreGeometry:
    def test_sidewall_height(self):
        tyre = Tyre(width_m=0.225, aspect_ratio=0.45, rim_diameter_m=0.4318)
        assert tyre.sidewall_height_m == pytest.approx(0.225 * 0.45)

    def test_unloaded_radius(self):
        tyre = Tyre(width_m=0.225, aspect_ratio=0.45, rim_diameter_m=0.4318)
        expected = 0.4318 / 2.0 + 0.225 * 0.45
        assert tyre.unloaded_radius_m == pytest.approx(expected)

    def test_rolling_radius_smaller_than_unloaded(self):
        assert REFERENCE_TYRE.rolling_radius_m < REFERENCE_TYRE.unloaded_radius_m

    def test_rolling_circumference(self):
        assert REFERENCE_TYRE.rolling_circumference_m == pytest.approx(
            2.0 * math.pi * REFERENCE_TYRE.rolling_radius_m
        )

    def test_reference_tyre_circumference_is_plausible(self):
        # A 225/45R17 travels very close to 2 m per revolution.
        assert 1.85 <= REFERENCE_TYRE.rolling_circumference_m <= 2.05

    def test_contact_patch_fraction_is_small(self):
        assert 0.0 < REFERENCE_TYRE.contact_patch_fraction < 0.1

    def test_contact_patch_angle_consistency(self):
        fraction = REFERENCE_TYRE.contact_patch_angle_rad / (2.0 * math.pi)
        assert REFERENCE_TYRE.contact_patch_fraction == pytest.approx(fraction)

    def test_describe_mentions_designation(self):
        assert "225/45R17" in REFERENCE_TYRE.describe()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width_m": 0.0, "aspect_ratio": 0.45, "rim_diameter_m": 0.43},
            {"width_m": 0.2, "aspect_ratio": 0.1, "rim_diameter_m": 0.43},
            {"width_m": 0.2, "aspect_ratio": 0.45, "rim_diameter_m": -1.0},
            {
                "width_m": 0.2,
                "aspect_ratio": 0.45,
                "rim_diameter_m": 0.43,
                "contact_patch_length_m": 0.0,
            },
        ],
    )
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Tyre(**kwargs)


class TestEtrtoParsing:
    def test_reference_size(self):
        tyre = tyre_from_etrto("225/45R17")
        assert tyre.width_m == pytest.approx(0.225)
        assert tyre.aspect_ratio == pytest.approx(0.45)
        assert tyre.rim_diameter_m == pytest.approx(17 * 0.0254)

    def test_designation_is_normalized(self):
        assert tyre_from_etrto(" 205/55 r16 ").designation == "205/55R16"

    def test_lowercase_accepted(self):
        assert tyre_from_etrto("195/65r15").rim_diameter_m == pytest.approx(15 * 0.0254)

    def test_bigger_rim_means_bigger_radius(self):
        small = tyre_from_etrto("205/55R16")
        large = tyre_from_etrto("205/55R19")
        assert large.rolling_radius_m > small.rolling_radius_m

    def test_lower_profile_means_smaller_radius(self):
        tall = tyre_from_etrto("225/60R17")
        low = tyre_from_etrto("225/40R17")
        assert low.rolling_radius_m < tall.rolling_radius_m

    @pytest.mark.parametrize("bad", ["", "225-45-17", "2254517", "22/45R17", "225/45R1"])
    def test_malformed_designations_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            tyre_from_etrto(bad)

    def test_custom_contact_patch_length(self):
        tyre = tyre_from_etrto("225/45R17", contact_patch_length_m=0.15)
        assert tyre.contact_patch_length_m == 0.15
