"""Tests for the OperatingPoint working-condition bundle."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import (
    OperatingPoint,
    best_case_operating_point,
    nominal_operating_point,
    worst_case_operating_point,
)
from repro.conditions.process import ProcessCorner
from repro.conditions.supply import SupplyCondition, SupplyRail
from repro.errors import ConfigurationError


class TestOperatingPoint:
    def test_defaults(self):
        point = OperatingPoint()
        assert point.temperature_c == 25.0
        assert point.speed_kmh == 60.0
        assert point.supply_voltage == pytest.approx(1.2)
        assert point.is_moving

    def test_speed_conversion(self):
        point = OperatingPoint(speed_kmh=72.0)
        assert point.speed_ms == pytest.approx(20.0)

    def test_stationary_point(self):
        point = OperatingPoint(speed_kmh=0.0)
        assert not point.is_moving

    def test_rejects_negative_speed(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(speed_kmh=-1.0)

    def test_rejects_extreme_temperature(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(temperature_c=300.0)

    def test_at_speed_returns_new_point(self):
        point = OperatingPoint(speed_kmh=60.0)
        faster = point.at_speed(120.0)
        assert faster.speed_kmh == 120.0
        assert point.speed_kmh == 60.0
        assert faster.temperature_c == point.temperature_c

    def test_at_temperature_returns_new_point(self):
        point = OperatingPoint()
        hot = point.at_temperature(125.0)
        assert hot.temperature_c == 125.0
        assert point.temperature_c == 25.0

    def test_with_supply(self):
        rail = SupplyRail(name="vdd_core", nominal_v=1.0, tolerance=0.0)
        point = OperatingPoint().with_supply(SupplyCondition(rail=rail))
        assert point.supply_voltage == pytest.approx(1.0)

    def test_with_process(self):
        from repro.conditions.process import ProcessVariation

        point = OperatingPoint().with_process(
            ProcessVariation(corner=ProcessCorner.FAST)
        )
        assert point.process.corner is ProcessCorner.FAST

    def test_describe_mentions_key_conditions(self):
        text = OperatingPoint(speed_kmh=90.0, temperature_c=85.0).describe()
        assert "90" in text
        assert "85" in text
        assert "V" in text

    def test_is_hashable_and_frozen(self):
        point = OperatingPoint()
        with pytest.raises(AttributeError):
            point.speed_kmh = 10.0  # type: ignore[misc]
        assert hash(point) == hash(OperatingPoint())


class TestPredefinedPoints:
    def test_nominal_point_speed(self):
        assert nominal_operating_point(80.0).speed_kmh == 80.0

    def test_worst_case_is_hot_and_fast(self):
        point = worst_case_operating_point()
        assert point.temperature_c == 125.0
        assert point.process.corner is ProcessCorner.FAST

    def test_best_case_is_cold_and_slow(self):
        point = best_case_operating_point()
        assert point.temperature_c == -40.0
        assert point.process.corner is ProcessCorner.SLOW

    def test_worst_case_leaks_more_than_best_case(self):
        assert (
            worst_case_operating_point().process.leakage_factor
            > best_case_operating_point().process.leakage_factor
        )
