"""Tests for process corners and Monte-Carlo process variation."""

from __future__ import annotations

import pytest

from repro.conditions.process import MonteCarloSampler, ProcessCorner, ProcessVariation
from repro.errors import ConfigurationError


class TestProcessCorner:
    def test_typical_corner_is_unity(self):
        assert ProcessCorner.TYPICAL.dynamic_factor == 1.0
        assert ProcessCorner.TYPICAL.leakage_factor == 1.0

    def test_fast_corner_leaks_more_than_slow(self):
        assert ProcessCorner.FAST.leakage_factor > ProcessCorner.SLOW.leakage_factor

    def test_fast_corner_leaks_more_than_typical(self):
        assert ProcessCorner.FAST.leakage_factor > 1.0
        assert ProcessCorner.SLOW.leakage_factor < 1.0

    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("slow", ProcessCorner.SLOW),
            ("SS", ProcessCorner.SLOW),
            ("typical", ProcessCorner.TYPICAL),
            ("tt", ProcessCorner.TYPICAL),
            ("nom", ProcessCorner.TYPICAL),
            ("FAST", ProcessCorner.FAST),
            ("ff", ProcessCorner.FAST),
        ],
    )
    def test_from_name_aliases(self, alias, expected):
        assert ProcessCorner.from_name(alias) is expected

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            ProcessCorner.from_name("monte-carlo")


class TestProcessVariation:
    def test_defaults_are_typical_unity(self):
        variation = ProcessVariation()
        assert variation.dynamic_factor == 1.0
        assert variation.leakage_factor == 1.0

    def test_extra_factors_multiply_the_corner(self):
        variation = ProcessVariation(
            corner=ProcessCorner.FAST, extra_dynamic=1.1, extra_leakage=2.0
        )
        assert variation.dynamic_factor == pytest.approx(
            ProcessCorner.FAST.dynamic_factor * 1.1
        )
        assert variation.leakage_factor == pytest.approx(
            ProcessCorner.FAST.leakage_factor * 2.0
        )

    def test_rejects_non_positive_factors(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation(extra_dynamic=0.0)
        with pytest.raises(ConfigurationError):
            ProcessVariation(extra_leakage=-1.0)


class TestMonteCarloSampler:
    def test_sampling_is_reproducible_with_same_seed(self):
        first = MonteCarloSampler(seed=42).sample_many(5)
        second = MonteCarloSampler(seed=42).sample_many(5)
        assert [v.extra_leakage for v in first] == [v.extra_leakage for v in second]

    def test_different_seeds_differ(self):
        first = MonteCarloSampler(seed=1).sample()
        second = MonteCarloSampler(seed=2).sample()
        assert first.extra_leakage != second.extra_leakage

    def test_samples_are_positive(self):
        for variation in MonteCarloSampler(seed=0).sample_many(50):
            assert variation.dynamic_factor > 0.0
            assert variation.leakage_factor > 0.0

    def test_leakage_spread_is_wider_than_dynamic(self):
        import numpy as np

        samples = MonteCarloSampler(seed=3).sample_many(200)
        dynamic = np.array([v.extra_dynamic for v in samples])
        leakage = np.array([v.extra_leakage for v in samples])
        assert leakage.std() > dynamic.std()

    def test_sample_many_length(self):
        assert len(MonteCarloSampler().sample_many(7)) == 7

    def test_sample_many_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            MonteCarloSampler().sample_many(-1)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloSampler(dynamic_sigma=-0.1)
