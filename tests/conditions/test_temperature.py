"""Tests for temperature profiles and the tyre thermal model."""

from __future__ import annotations

import pytest

from repro.conditions.temperature import (
    ConstantTemperature,
    LinearRamp,
    TyreThermalModel,
    standard_corners_celsius,
)
from repro.errors import ConfigurationError


class TestConstantTemperature:
    def test_returns_configured_value_at_any_time(self):
        profile = ConstantTemperature(celsius=85.0)
        assert profile.temperature_at(0.0) == 85.0
        assert profile.temperature_at(1e6) == 85.0

    def test_default_is_room_temperature(self):
        assert ConstantTemperature().temperature_at(10.0) == 25.0

    def test_rejects_implausible_temperature(self):
        with pytest.raises(ConfigurationError):
            ConstantTemperature(celsius=500.0)

    def test_average_equals_value(self):
        profile = ConstantTemperature(celsius=40.0)
        assert profile.average(0.0, 100.0) == pytest.approx(40.0)

    def test_average_rejects_reversed_interval(self):
        with pytest.raises(ConfigurationError):
            ConstantTemperature().average(10.0, 5.0)

    def test_average_of_degenerate_interval(self):
        assert ConstantTemperature(celsius=30.0).average(5.0, 5.0) == 30.0


class TestLinearRamp:
    def test_endpoints(self):
        ramp = LinearRamp(start_celsius=-10.0, end_celsius=70.0, duration_s=100.0)
        assert ramp.temperature_at(0.0) == -10.0
        assert ramp.temperature_at(100.0) == 70.0

    def test_midpoint(self):
        ramp = LinearRamp(start_celsius=0.0, end_celsius=100.0, duration_s=50.0)
        assert ramp.temperature_at(25.0) == pytest.approx(50.0)

    def test_clamped_outside_duration(self):
        ramp = LinearRamp(start_celsius=0.0, end_celsius=100.0, duration_s=10.0)
        assert ramp.temperature_at(-5.0) == 0.0
        assert ramp.temperature_at(50.0) == 100.0

    def test_average_of_full_ramp_is_mean(self):
        ramp = LinearRamp(start_celsius=0.0, end_celsius=100.0, duration_s=10.0)
        assert ramp.average(0.0, 10.0, samples=101) == pytest.approx(50.0, abs=0.5)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ConfigurationError):
            LinearRamp(start_celsius=0.0, end_celsius=1.0, duration_s=0.0)


class TestTyreThermalModel:
    def test_starts_at_ambient(self):
        model = TyreThermalModel(ambient_celsius=20.0)
        assert model.current_celsius == 20.0

    def test_steady_state_grows_with_speed(self):
        model = TyreThermalModel()
        assert model.steady_state(30.0) > model.steady_state(10.0)

    def test_steady_state_saturates(self):
        model = TyreThermalModel(max_rise_c=30.0)
        assert model.steady_state(200.0) == pytest.approx(model.ambient_celsius + 30.0)

    def test_advance_moves_towards_steady_state(self):
        model = TyreThermalModel(ambient_celsius=25.0, time_constant_s=100.0)
        target = model.steady_state(30.0)
        temperature = model.advance(50.0, 30.0)
        assert 25.0 < temperature < target

    def test_long_advance_converges(self):
        model = TyreThermalModel(time_constant_s=10.0)
        model.advance(1000.0, 30.0)
        assert model.current_celsius == pytest.approx(model.steady_state(30.0), abs=0.01)

    def test_cooling_when_stopped(self):
        model = TyreThermalModel(time_constant_s=10.0)
        model.advance(1000.0, 40.0)
        hot = model.current_celsius
        model.advance(1000.0, 0.0)
        assert model.current_celsius < hot
        assert model.current_celsius == pytest.approx(model.ambient_celsius, abs=0.01)

    def test_reset_returns_to_ambient(self):
        model = TyreThermalModel()
        model.advance(500.0, 40.0)
        model.reset()
        assert model.current_celsius == model.ambient_celsius

    def test_zero_step_is_identity(self):
        model = TyreThermalModel()
        before = model.current_celsius
        model.advance(0.0, 50.0)
        assert model.current_celsius == before

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError):
            TyreThermalModel().advance(-1.0, 10.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TyreThermalModel(time_constant_s=0.0)
        with pytest.raises(ConfigurationError):
            TyreThermalModel(rise_coefficient=-1.0)
        with pytest.raises(ConfigurationError):
            TyreThermalModel(max_rise_c=-5.0)

    def test_temperature_at_reports_last_state(self):
        model = TyreThermalModel()
        model.advance(100.0, 30.0)
        assert model.temperature_at(12345.0) == model.current_celsius


def test_standard_corners_cover_automotive_range():
    cold, nominal, hot = standard_corners_celsius()
    assert cold == -40.0
    assert nominal == 25.0
    assert hot == 125.0
