"""Tests for supply rails and supply conditions."""

from __future__ import annotations

import pytest

from repro.conditions.supply import (
    ANALOG_RAIL,
    CORE_RAIL,
    RF_RAIL,
    SupplyCondition,
    SupplyRail,
    default_rails,
)
from repro.errors import ConfigurationError


class TestSupplyRail:
    def test_tolerance_band(self):
        rail = SupplyRail(name="vdd", nominal_v=1.2, tolerance=0.1)
        assert rail.minimum_v == pytest.approx(1.08)
        assert rail.maximum_v == pytest.approx(1.32)

    def test_zero_tolerance(self):
        rail = SupplyRail(name="vdd", nominal_v=1.8, tolerance=0.0)
        assert rail.minimum_v == rail.maximum_v == 1.8

    def test_scaled_changes_nominal_only(self):
        rail = SupplyRail(name="vdd", nominal_v=1.2)
        scaled = rail.scaled(0.9)
        assert scaled.nominal_v == pytest.approx(1.08)
        assert scaled.tolerance == rail.tolerance
        assert scaled.name == rail.name

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ConfigurationError):
            SupplyRail(name="vdd", nominal_v=1.2).scaled(0.0)

    def test_rejects_invalid_voltage(self):
        with pytest.raises(ConfigurationError):
            SupplyRail(name="vdd", nominal_v=0.0)

    def test_rejects_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            SupplyRail(name="vdd", nominal_v=1.2, tolerance=1.5)

    def test_rejects_invalid_efficiency(self):
        with pytest.raises(ConfigurationError):
            SupplyRail(name="vdd", nominal_v=1.2, regulator_efficiency=0.0)


class TestSupplyCondition:
    def test_nominal_corner(self):
        condition = SupplyCondition(rail=CORE_RAIL, corner="nom")
        assert condition.voltage == CORE_RAIL.nominal_v

    def test_min_corner(self):
        condition = SupplyCondition(rail=CORE_RAIL, corner="min")
        assert condition.voltage == pytest.approx(CORE_RAIL.minimum_v)

    def test_max_corner(self):
        condition = SupplyCondition(rail=CORE_RAIL, corner="max")
        assert condition.voltage == pytest.approx(CORE_RAIL.maximum_v)

    def test_invalid_corner_rejected(self):
        with pytest.raises(ConfigurationError):
            SupplyCondition(rail=CORE_RAIL, corner="typ")


class TestDefaultRails:
    def test_contains_the_three_node_rails(self):
        rails = default_rails()
        assert set(rails) == {"vdd_core", "vdd_analog", "vdd_rf"}

    def test_core_rail_is_low_voltage(self):
        assert CORE_RAIL.nominal_v < ANALOG_RAIL.nominal_v
        assert CORE_RAIL.nominal_v < RF_RAIL.nominal_v

    def test_rails_keyed_by_their_own_name(self):
        for name, rail in default_rails().items():
            assert rail.name == name
