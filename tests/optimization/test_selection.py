"""Tests for the duty-cycle-driven technique selection policy."""

from __future__ import annotations

import pytest

from repro.core.evaluator import EnergyEvaluator
from repro.errors import OptimizationError
from repro.optimization.selection import (
    SelectionPolicy,
    select_techniques,
)
from repro.optimization.techniques import TechniqueKind


@pytest.fixture
def duty_report(node, database, point):
    return EnergyEvaluator(node, database).duty_cycles(point)


@pytest.fixture
def assignments(duty_report):
    return select_techniques(duty_report)


class TestSelectionOutcome:
    def test_some_techniques_are_selected(self, assignments):
        assert len(assignments) > 0

    def test_every_assignment_has_a_rationale(self, assignments):
        for assignment in assignments:
            assert assignment.rationale
            assert assignment.block in assignment.describe()

    def test_short_duty_cycle_radio_gets_static_technique(self, assignments):
        """The paper's headline rule: the transmitter is only on for a sliver
        of the wheel round, so it must receive a static-power technique even
        though its active power is dynamic-dominated."""
        radio_techniques = [
            a.technique.kind for a in assignments if a.block == "rf_tx"
        ]
        assert TechniqueKind.STATIC in radio_techniques or (
            TechniqueKind.BOTH in radio_techniques
        )

    def test_dynamic_heavy_blocks_get_dynamic_techniques(self, assignments):
        mcu_kinds = {a.technique.kind for a in assignments if a.block == "mcu"}
        assert TechniqueKind.DYNAMIC in mcu_kinds or TechniqueKind.BOTH in mcu_kinds

    def test_always_on_blocks_are_not_power_gated(self, assignments):
        for assignment in assignments:
            if assignment.block in ("lf_rx", "pmu"):
                assert assignment.technique.kind is not TechniqueKind.STATIC

    def test_negligible_blocks_are_left_alone(self, duty_report):
        policy = SelectionPolicy(relevance_threshold=0.2)
        assignments = select_techniques(duty_report, policy=policy)
        total = duty_report.total_energy_j()
        for assignment in assignments:
            share = duty_report.for_block(assignment.block).total_energy_j / total
            assert share >= 0.2

    def test_assignments_ordered_by_energy_contribution(self, assignments, duty_report):
        blocks_in_order = []
        for assignment in assignments:
            if assignment.block not in blocks_in_order:
                blocks_in_order.append(assignment.block)
        energies = [duty_report.for_block(b).total_energy_j for b in blocks_in_order]
        assert energies == sorted(energies, reverse=True)


class TestPolicyKnobs:
    def test_voltage_scaling_can_be_disabled(self, duty_report):
        policy = SelectionPolicy(enable_voltage_scaling=False)
        assignments = select_techniques(duty_report, policy=policy)
        assert all(a.technique.name != "voltage-scaling" for a in assignments)

    def test_voltage_scaling_restricted_to_core_blocks(self, assignments):
        for assignment in assignments:
            if assignment.technique.name == "voltage-scaling":
                assert assignment.block in ("mcu", "sram")

    def test_gateable_blocks_override(self, duty_report):
        assignments = select_techniques(duty_report, gateable_blocks=frozenset({"mcu"}))
        static_blocks = {
            a.block for a in assignments if a.technique.kind is TechniqueKind.STATIC
        }
        assert static_blocks <= {"mcu"}

    def test_aggressive_gating_for_very_short_duty_cycles(self, duty_report):
        policy = SelectionPolicy(aggressive_duty_cycle=0.05, short_duty_cycle=0.10)
        assignments = select_techniques(duty_report, policy=policy)
        names = {a.technique.name for a in assignments if a.block == "rf_tx"}
        assert "duty-cycle-aware power-gating" in names

    def test_policy_validation(self):
        with pytest.raises(OptimizationError):
            SelectionPolicy(short_duty_cycle=2.0)
        with pytest.raises(OptimizationError):
            SelectionPolicy(aggressive_duty_cycle=0.5, short_duty_cycle=0.1)
        with pytest.raises(OptimizationError):
            SelectionPolicy(relevance_threshold=1.0)

    def test_empty_report_rejected(self, node, database, point):
        report = EnergyEvaluator(node, database).duty_cycles(point)
        object.__setattr__(report, "entries", tuple())
        with pytest.raises(OptimizationError):
            select_techniques(report)
