"""Tests for the break-even sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.optimization.sensitivity import break_even_sensitivity
from repro.scavenger.electrostatic import ElectrostaticScavenger


@pytest.fixture(scope="module")
def entries():
    from repro.blocks import baseline_node
    from repro.power import reference_power_database
    from repro.scavenger import PiezoelectricScavenger

    return break_even_sensitivity(
        baseline_node(), reference_power_database(), PiezoelectricScavenger()
    )


class TestSensitivityEntries:
    def test_covers_the_standard_knobs(self, entries):
        parameters = {entry.parameter for entry in entries}
        assert "scavenger size" in parameters
        assert "radio payload bits" in parameters
        assert "transmission interval (revolutions)" in parameters

    def test_shared_baseline(self, entries):
        baselines = {entry.baseline_break_even_kmh for entry in entries}
        assert len(baselines) == 1

    def test_scavenger_size_lowers_the_break_even(self, entries):
        entry = next(e for e in entries if e.parameter == "scavenger size")
        assert entry.delta_kmh < 0.0
        assert entry.elasticity < 0.0

    def test_bigger_payload_raises_the_break_even(self, entries):
        entry = next(e for e in entries if e.parameter == "radio payload bits")
        assert entry.delta_kmh >= 0.0

    def test_sparser_transmission_lowers_the_break_even(self, entries):
        entry = next(
            e for e in entries if e.parameter == "transmission interval (revolutions)"
        )
        assert entry.delta_kmh <= 0.0

    def test_entries_sorted_by_elasticity_magnitude(self, entries):
        magnitudes = [
            abs(entry.elasticity) if entry.elasticity is not None else 0.0
            for entry in entries
        ]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_scavenger_size_is_the_dominant_knob(self, entries):
        assert entries[0].parameter == "scavenger size"

    def test_as_row_contains_the_key_columns(self, entries):
        row = entries[0].as_row()
        assert {"parameter", "break_even_kmh", "delta_kmh", "elasticity"} <= set(row)


class TestSensitivityValidation:
    def test_requires_an_activating_baseline(self, node, database):
        with pytest.raises(AnalysisError):
            break_even_sensitivity(node, database, ElectrostaticScavenger())

    def test_requires_positive_step(self, node, database, scavenger):
        with pytest.raises(AnalysisError):
            break_even_sensitivity(node, database, scavenger, relative_step=0.0)

    def test_custom_perturbations(self, node, database, scavenger):
        custom = {
            "double scavenger": lambda n, s, t: (n, s.scaled(2.0), t),
        }
        entries = break_even_sensitivity(
            node, database, scavenger, perturbations=custom
        )
        assert len(entries) == 1
        assert entries[0].parameter == "double scavenger"
        assert entries[0].delta_kmh < 0.0
