"""Tests for the optimization techniques (power-database rewrites)."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.errors import OptimizationError
from repro.optimization.techniques import (
    ClockGating,
    DutyCycleAwarePowerGating,
    PowerGating,
    TechniqueKind,
    VoltageScaling,
    default_technique_catalogue,
)


POINT = OperatingPoint()


class TestClockGating:
    def test_reduces_idle_dynamic_power(self, database):
        gated = ClockGating().apply(database, "mcu")
        assert gated.power("mcu", "idle", POINT).dynamic_w < database.power(
            "mcu", "idle", POINT
        ).dynamic_w

    def test_leaves_active_mode_alone(self, database):
        gated = ClockGating().apply(database, "mcu")
        assert gated.power("mcu", "active", POINT).dynamic_w == pytest.approx(
            database.power("mcu", "active", POINT).dynamic_w
        )

    def test_leaves_leakage_alone(self, database):
        gated = ClockGating().apply(database, "mcu")
        assert gated.power("mcu", "idle", POINT).static_w == pytest.approx(
            database.power("mcu", "idle", POINT).static_w
        )

    def test_residual_fraction_is_respected(self, database):
        gated = ClockGating(residual_idle_dynamic=0.2).apply(database, "mcu")
        assert gated.power("mcu", "idle", POINT).dynamic_w == pytest.approx(
            0.2 * database.power("mcu", "idle", POINT).dynamic_w
        )

    def test_block_without_idle_mode_rejected(self, database):
        with pytest.raises(OptimizationError):
            ClockGating().apply(database, "pressure_sensor")

    def test_kind_is_dynamic(self):
        assert ClockGating().kind is TechniqueKind.DYNAMIC

    def test_invalid_residual_rejected(self):
        with pytest.raises(OptimizationError):
            ClockGating(residual_idle_dynamic=1.5)


class TestPowerGating:
    def test_reduces_sleep_leakage(self, database):
        gated = PowerGating().apply(database, "mcu")
        assert gated.power("mcu", "sleep", POINT).static_w < database.power(
            "mcu", "sleep", POINT
        ).static_w

    def test_adds_wakeup_overhead_to_active_dynamic(self, database):
        gated = PowerGating(wakeup_overhead=0.1).apply(database, "mcu")
        assert gated.power("mcu", "active", POINT).dynamic_w == pytest.approx(
            1.1 * database.power("mcu", "active", POINT).dynamic_w
        )

    def test_zero_overhead_leaves_active_untouched(self, database):
        gated = PowerGating(wakeup_overhead=0.0).apply(database, "mcu")
        assert gated.power("mcu", "active", POINT).dynamic_w == pytest.approx(
            database.power("mcu", "active", POINT).dynamic_w
        )

    def test_kind_is_static(self):
        assert PowerGating().kind is TechniqueKind.STATIC

    def test_aggressive_variant_is_leakier_on_wakeup_but_tighter_in_sleep(self, database):
        plain = PowerGating().apply(database, "mcu")
        aggressive = DutyCycleAwarePowerGating().apply(database, "mcu")
        assert aggressive.power("mcu", "sleep", POINT).static_w < plain.power(
            "mcu", "sleep", POINT
        ).static_w
        assert aggressive.power("mcu", "active", POINT).dynamic_w > plain.power(
            "mcu", "active", POINT
        ).dynamic_w

    def test_invalid_parameters_rejected(self):
        with pytest.raises(OptimizationError):
            PowerGating(residual_sleep_leakage=-0.1)
        with pytest.raises(OptimizationError):
            PowerGating(wakeup_overhead=-0.1)


class TestVoltageScaling:
    def test_dynamic_power_scales_quadratically(self, database):
        scaled = VoltageScaling(voltage_ratio=0.8).apply(database, "mcu")
        assert scaled.power("mcu", "active", POINT).dynamic_w == pytest.approx(
            0.64 * database.power("mcu", "active", POINT).dynamic_w
        )

    def test_leakage_is_reduced_too(self, database):
        scaled = VoltageScaling(voltage_ratio=0.8).apply(database, "mcu")
        assert scaled.power("mcu", "sleep", POINT).static_w < database.power(
            "mcu", "sleep", POINT
        ).static_w

    def test_all_modes_are_affected(self, database):
        scaled = VoltageScaling(voltage_ratio=0.9).apply(database, "mcu")
        for mode in database.modes_of("mcu"):
            assert scaled.power("mcu", mode, POINT).dynamic_w <= database.power(
                "mcu", mode, POINT
            ).dynamic_w + 1e-18

    def test_kind_is_both(self):
        assert VoltageScaling().kind is TechniqueKind.BOTH

    def test_unity_ratio_is_identity(self, database):
        scaled = VoltageScaling(voltage_ratio=1.0).apply(database, "mcu")
        assert scaled.power("mcu", "active", POINT).total_w == pytest.approx(
            database.power("mcu", "active", POINT).total_w
        )

    def test_invalid_ratio_rejected(self):
        with pytest.raises(OptimizationError):
            VoltageScaling(voltage_ratio=0.0)
        with pytest.raises(OptimizationError):
            VoltageScaling(voltage_ratio=1.5)


class TestCatalogue:
    def test_catalogue_contains_expected_techniques(self):
        catalogue = default_technique_catalogue()
        assert {"clock-gating", "power-gating", "voltage-scaling"} <= set(catalogue)

    def test_catalogue_keys_match_names(self):
        for name, technique in default_technique_catalogue().items():
            assert technique.name == name

    def test_describe_mentions_kind(self):
        for technique in default_technique_catalogue().values():
            assert technique.kind.value in technique.describe()

    def test_techniques_do_not_mutate_the_source_database(self, database):
        before = database.power("mcu", "sleep", POINT).static_w
        for technique in default_technique_catalogue().values():
            technique.apply(database, "mcu")
        assert database.power("mcu", "sleep", POINT).static_w == pytest.approx(before)
