"""Tests for the design-space exploration helpers."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.optimization.exploration import (
    ArchitectureCandidate,
    evaluate_candidate,
    explore_design_space,
    scavenger_size_sweep,
)
from repro.scavenger.electrostatic import ElectrostaticScavenger


@pytest.fixture
def candidates(node, optimized, legacy, database, scavenger):
    return [
        ArchitectureCandidate(node=node, database=database, scavenger=scavenger,
                              label="baseline"),
        ArchitectureCandidate(node=optimized, database=database, scavenger=scavenger,
                              label="optimized"),
        ArchitectureCandidate(node=legacy, database=database, scavenger=scavenger,
                              label="legacy"),
    ]


class TestEvaluateCandidate:
    def test_result_fields(self, candidates):
        result = evaluate_candidate(candidates[0])
        assert result.label == "baseline"
        assert result.break_even_kmh is not None
        assert result.energy_per_rev_at_60_j > 0.0
        assert result.generated_per_rev_at_60_j > 0.0

    def test_non_activating_candidate(self, node, database):
        candidate = ArchitectureCandidate(
            node=node,
            database=database,
            scavenger=ElectrostaticScavenger(),
            label="starved",
        )
        result = evaluate_candidate(candidate, high_kmh=200.0)
        assert not result.activates
        assert result.break_even_kmh is None

    def test_as_row_handles_missing_break_even(self, node, database):
        import math

        candidate = ArchitectureCandidate(
            node=node,
            database=database,
            scavenger=ElectrostaticScavenger(),
            label="starved",
        )
        row = evaluate_candidate(candidate, high_kmh=150.0).as_row()
        assert math.isnan(row["break_even_kmh"])
        assert row["activates"] is False


class TestExploreDesignSpace:
    def test_results_sorted_by_break_even(self, candidates):
        results = explore_design_space(candidates)
        break_evens = [r.break_even_kmh for r in results if r.break_even_kmh is not None]
        assert break_evens == sorted(break_evens)

    def test_legacy_wins_optimized_second(self, candidates):
        results = explore_design_space(candidates)
        assert results[0].label == "legacy"
        assert results[1].label == "optimized"
        assert results[2].label == "baseline"

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(AnalysisError):
            explore_design_space([])


class TestScavengerSizeSweep:
    def test_bigger_scavenger_monotonically_lowers_break_even(
        self, node, database, scavenger
    ):
        results = scavenger_size_sweep(
            node, database, scavenger, size_factors=[0.5, 1.0, 2.0, 4.0]
        )
        break_evens = [r.break_even_kmh for r in results]
        assert all(b is not None for b in break_evens[1:])
        finite = [b for b in break_evens if b is not None]
        assert finite == sorted(finite, reverse=True)

    def test_sweep_preserves_order_of_factors(self, node, database, scavenger):
        results = scavenger_size_sweep(node, database, scavenger, size_factors=[1.0, 2.0])
        assert "x1.00" in results[0].label
        assert "x2.00" in results[1].label

    def test_empty_sweep_rejected(self, node, database, scavenger):
        with pytest.raises(AnalysisError):
            scavenger_size_sweep(node, database, scavenger, size_factors=[])
