"""Tests for applying technique assignments and re-estimating energy."""

from __future__ import annotations

import pytest

from repro.core.evaluator import EnergyEvaluator
from repro.optimization.apply import apply_assignments
from repro.optimization.selection import TechniqueAssignment, select_techniques
from repro.optimization.techniques import ClockGating, PowerGating


@pytest.fixture
def duty_report(node, database, point):
    return EnergyEvaluator(node, database).duty_cycles(point)


@pytest.fixture
def outcome(node, database, duty_report, point):
    assignments = select_techniques(duty_report, database=database)
    return apply_assignments(node, database, assignments, point=point)


class TestOutcome:
    def test_energy_is_reduced(self, outcome):
        assert outcome.energy_after_j < outcome.energy_before_j
        assert outcome.saving_j > 0.0
        assert 0.0 < outcome.saving_fraction < 1.0

    def test_before_energy_matches_direct_evaluation(self, outcome, node, database, point):
        direct = EnergyEvaluator(node, database).energy_per_revolution_j(point)
        assert outcome.energy_before_j == pytest.approx(direct)

    def test_after_energy_matches_rewritten_database(self, outcome, node, point):
        direct = EnergyEvaluator(node, outcome.database).energy_per_revolution_j(point)
        assert outcome.energy_after_j == pytest.approx(direct)

    def test_original_database_is_untouched(self, node, database, duty_report, point):
        before = EnergyEvaluator(node, database).energy_per_revolution_j(point)
        apply_assignments(node, database, select_techniques(duty_report), point=point)
        after = EnergyEvaluator(node, database).energy_per_revolution_j(point)
        assert before == pytest.approx(after)

    def test_as_rows_lists_applied_assignments(self, outcome):
        rows = outcome.as_rows()
        assert len(rows) == len(outcome.assignments)
        assert all({"block", "technique", "kind", "rationale"} <= set(row) for row in rows)

    def test_nothing_is_skipped_when_selection_knows_the_database(self, outcome):
        """Passing the database to the selection filters inapplicable
        techniques up front, so the application step has nothing to skip."""
        assert outcome.skipped == ()


class TestSharedEvaluator:
    def test_shared_evaluator_matches_fresh_one(self, node, database, duty_report, point):
        assignments = select_techniques(duty_report, database=database)
        shared = EnergyEvaluator(node, database)
        with_shared = apply_assignments(
            node, database, assignments, point=point, evaluator=shared
        )
        fresh = apply_assignments(node, database, assignments, point=point)
        assert with_shared.energy_before_j == fresh.energy_before_j
        assert with_shared.energy_after_j == fresh.energy_after_j

    def test_mismatched_evaluator_rejected(self, node, database, point):
        from repro.blocks import optimized_node
        from repro.errors import OptimizationError

        other = EnergyEvaluator(optimized_node(), database)
        with pytest.raises(OptimizationError, match="different node or database"):
            apply_assignments(node, database, [], point=point, evaluator=other)


class TestSkippedAssignments:
    def test_inapplicable_technique_is_skipped_not_fatal(self, node, database, point):
        assignments = [
            # The pressure sensor has no idle mode, so clock gating cannot apply.
            TechniqueAssignment(
                block="pressure_sensor",
                technique=ClockGating(),
                rationale="intentionally inapplicable",
            ),
            TechniqueAssignment(
                block="mcu", technique=PowerGating(), rationale="valid"
            ),
        ]
        outcome = apply_assignments(node, database, assignments, point=point)
        assert len(outcome.assignments) == 1
        assert len(outcome.skipped) == 1
        skipped_assignment, reason = outcome.skipped[0]
        assert skipped_assignment.block == "pressure_sensor"
        assert "idle" in reason

    def test_empty_assignment_list_is_a_no_op(self, node, database, point):
        outcome = apply_assignments(node, database, [], point=point)
        assert outcome.energy_after_j == pytest.approx(outcome.energy_before_j)
        assert outcome.saving_fraction == 0.0


class TestSingleTechniqueEffects:
    def test_power_gating_the_mcu_helps_at_low_speed(self, node, database):
        """At low speed the wheel round is long and the node sleeps most of
        it, so power gating the MCU shows a visible saving."""
        from repro.conditions.operating_point import OperatingPoint

        point = OperatingPoint(speed_kmh=20.0)
        outcome = apply_assignments(
            node,
            database,
            [TechniqueAssignment("mcu", PowerGating(wakeup_overhead=0.0), "test")],
            point=point,
        )
        assert outcome.saving_fraction > 0.005

    def test_clock_gating_the_mcu_helps_where_idle_time_exists(self, node, database, point):
        outcome = apply_assignments(
            node,
            database,
            [TechniqueAssignment("mcu", ClockGating(), "test")],
            point=point,
        )
        assert outcome.saving_j > 0.0
