"""Tests for the wheel-round iterator over drive cycles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.timing.wheel_round import (
    IdleInterval,
    WheelRound,
    count_revolutions,
    iter_wheel_rounds,
)
from repro.vehicle.drive_cycle import constant_cruise, urban_cycle
from repro.vehicle.wheel import Wheel


@pytest.fixture
def wheel():
    return Wheel()


class TestUnits:
    def test_wheel_round_end(self):
        unit = WheelRound(index=0, start_s=1.0, period_s=0.1, speed_kmh=60.0)
        assert unit.end_s == pytest.approx(1.1)

    def test_wheel_round_validation(self):
        with pytest.raises(ConfigurationError):
            WheelRound(index=0, start_s=0.0, period_s=0.0, speed_kmh=60.0)
        with pytest.raises(ConfigurationError):
            WheelRound(index=0, start_s=0.0, period_s=0.1, speed_kmh=0.0)

    def test_idle_interval_end(self):
        interval = IdleInterval(start_s=2.0, duration_s=3.0)
        assert interval.end_s == pytest.approx(5.0)

    def test_idle_interval_validation(self):
        with pytest.raises(ConfigurationError):
            IdleInterval(start_s=0.0, duration_s=0.0)


class TestConstantCruise:
    def test_all_units_are_wheel_rounds(self, wheel):
        cycle = constant_cruise(60.0, duration_s=10.0)
        units = list(iter_wheel_rounds(cycle, wheel))
        assert all(isinstance(unit, WheelRound) for unit in units)

    def test_revolution_count_matches_kinematics(self, wheel):
        cycle = constant_cruise(60.0, duration_s=30.0)
        expected = 30.0 * wheel.revolutions_per_second(60.0)
        count = count_revolutions(cycle, wheel)
        assert count == pytest.approx(expected, abs=2)

    def test_periods_match_speed(self, wheel):
        cycle = constant_cruise(90.0, duration_s=5.0)
        expected_period = wheel.revolution_period_s(90.0)
        for unit in iter_wheel_rounds(cycle, wheel):
            assert unit.period_s <= expected_period + 1e-9

    def test_units_are_contiguous(self, wheel):
        cycle = constant_cruise(45.0, duration_s=5.0)
        cursor = 0.0
        for unit in iter_wheel_rounds(cycle, wheel):
            assert unit.start_s == pytest.approx(cursor, abs=1e-9)
            cursor = unit.end_s

    def test_indices_increase_monotonically(self, wheel):
        cycle = constant_cruise(70.0, duration_s=3.0)
        indices = [
            unit.index
            for unit in iter_wheel_rounds(cycle, wheel)
            if isinstance(unit, WheelRound)
        ]
        assert indices == list(range(len(indices)))

    def test_coverage_matches_cycle_duration(self, wheel):
        cycle = constant_cruise(60.0, duration_s=7.0)
        total = sum(
            unit.period_s if isinstance(unit, WheelRound) else unit.duration_s
            for unit in iter_wheel_rounds(cycle, wheel)
        )
        assert total == pytest.approx(7.0, abs=1e-6)


class TestStopAndGo:
    def test_standstill_yields_idle_intervals(self, wheel):
        cycle = constant_cruise(0.0, duration_s=5.0)
        units = list(iter_wheel_rounds(cycle, wheel, idle_step_s=1.0))
        assert all(isinstance(unit, IdleInterval) for unit in units)
        assert len(units) == 5

    def test_urban_cycle_mixes_unit_types(self, wheel):
        cycle = urban_cycle(repetitions=1)
        units = list(iter_wheel_rounds(cycle, wheel))
        kinds = {type(unit) for unit in units}
        assert kinds == {WheelRound, IdleInterval}

    def test_urban_cycle_coverage(self, wheel):
        cycle = urban_cycle(repetitions=1)
        total = sum(
            unit.period_s if isinstance(unit, WheelRound) else unit.duration_s
            for unit in iter_wheel_rounds(cycle, wheel)
        )
        assert total == pytest.approx(cycle.duration_s, rel=0.01)

    def test_threshold_controls_classification(self, wheel):
        cycle = constant_cruise(3.0, duration_s=5.0)
        low_threshold = list(iter_wheel_rounds(cycle, wheel, standstill_threshold_kmh=1.0))
        high_threshold = list(iter_wheel_rounds(cycle, wheel, standstill_threshold_kmh=5.0))
        assert all(isinstance(u, WheelRound) for u in low_threshold)
        assert all(isinstance(u, IdleInterval) for u in high_threshold)


class TestSafetyLimits:
    def test_max_units_caps_the_iterator(self, wheel):
        cycle = constant_cruise(60.0, duration_s=100.0)
        units = list(iter_wheel_rounds(cycle, wheel, max_units=10))
        assert len(units) == 10

    def test_invalid_idle_step_rejected(self, wheel):
        with pytest.raises(ConfigurationError):
            list(iter_wheel_rounds(constant_cruise(10.0), wheel, idle_step_s=0.0))

    def test_invalid_threshold_rejected(self, wheel):
        with pytest.raises(ConfigurationError):
            list(
                iter_wheel_rounds(
                    constant_cruise(10.0), wheel, standstill_threshold_kmh=0.0
                )
            )
