"""Tests for intra-revolution schedules."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.timing.schedule import Phase, RevolutionSchedule


BLOCKS = {"mcu": "sleep", "rf_tx": "sleep", "adc": "sleep"}


def simple_schedule(period_s: float = 0.1) -> RevolutionSchedule:
    return RevolutionSchedule(
        period_s=period_s,
        phases=(
            Phase(name="acquire", duration_s=0.010, block_modes={"adc": "active"}),
            Phase(name="compute", duration_s=0.005, block_modes={"mcu": "active"}),
            Phase(name="transmit", duration_s=0.004, block_modes={"rf_tx": "active"}),
        ),
        blocks=BLOCKS,
    )


class TestPhase:
    def test_mode_override(self):
        phase = Phase(name="acquire", duration_s=0.01, block_modes={"adc": "active"})
        assert phase.mode_of("adc", "sleep") == "active"
        assert phase.mode_of("mcu", "sleep") == "sleep"

    def test_activity_default(self):
        phase = Phase(name="compute", duration_s=0.01, activities={"mcu": 0.7})
        assert phase.activity_of("mcu") == 0.7
        assert phase.activity_of("adc") == 1.0

    def test_validation(self):
        with pytest.raises(ScheduleError):
            Phase(name="", duration_s=0.1)
        with pytest.raises(ScheduleError):
            Phase(name="x", duration_s=-0.1)


class TestScheduleStructure:
    def test_busy_and_resting_durations(self):
        schedule = simple_schedule()
        assert schedule.busy_duration_s == pytest.approx(0.019)
        assert schedule.resting_duration_s == pytest.approx(0.081)

    def test_iter_phases_appends_resting_remainder(self):
        schedule = simple_schedule()
        phases = list(schedule.iter_phases())
        assert phases[-1].name == "sleep"
        assert phases[-1].duration_s == pytest.approx(schedule.resting_duration_s)

    def test_total_phase_time_equals_period(self):
        schedule = simple_schedule()
        assert sum(p.duration_s for p in schedule.iter_phases()) == pytest.approx(
            schedule.period_s
        )

    def test_no_resting_phase_when_fully_busy(self):
        schedule = RevolutionSchedule(
            period_s=0.019,
            phases=simple_schedule().phases,
            blocks=BLOCKS,
        )
        names = [p.name for p in schedule.iter_phases()]
        assert "sleep" not in names

    def test_infeasible_schedule_rejected(self):
        with pytest.raises(ScheduleError):
            RevolutionSchedule(
                period_s=0.010,
                phases=simple_schedule().phases,
                blocks=BLOCKS,
            )

    def test_empty_blocks_rejected(self):
        with pytest.raises(ScheduleError):
            RevolutionSchedule(period_s=0.1, phases=(), blocks={})

    def test_modes_during_phase(self):
        schedule = simple_schedule()
        modes = schedule.modes_during(schedule.phase_named("compute"))
        assert modes == {"mcu": "active", "rf_tx": "sleep", "adc": "sleep"}

    def test_phase_named_missing_raises(self):
        with pytest.raises(ScheduleError):
            simple_schedule().phase_named("idle")

    def test_has_phase(self):
        schedule = simple_schedule()
        assert schedule.has_phase("transmit")
        assert not schedule.has_phase("nvm_write")


class TestActiveTimeAndDutyCycle:
    def test_active_time_of_block(self):
        schedule = simple_schedule()
        assert schedule.active_time_of("mcu", {"active"}) == pytest.approx(0.005)

    def test_duty_cycle_of_block(self):
        schedule = simple_schedule()
        assert schedule.duty_cycle_of("rf_tx", {"active"}) == pytest.approx(0.04)

    def test_resting_block_has_zero_duty_cycle(self):
        schedule = simple_schedule()
        assert schedule.duty_cycle_of("mcu", {"idle"}) == 0.0

    def test_unknown_block_raises(self):
        with pytest.raises(ScheduleError):
            simple_schedule().active_time_of("pmu", {"active"})

    def test_duty_cycles_sum_to_busy_fraction_for_disjoint_blocks(self):
        schedule = simple_schedule()
        total = sum(
            schedule.duty_cycle_of(block, {"active"}) for block in ("mcu", "rf_tx", "adc")
        )
        assert total == pytest.approx(schedule.busy_duration_s / schedule.period_s)


class TestRescaling:
    def test_scaled_to_longer_period_keeps_busy_phases(self):
        schedule = simple_schedule(period_s=0.1)
        longer = schedule.scaled_to_period(0.2)
        assert longer.busy_duration_s == pytest.approx(schedule.busy_duration_s)
        assert longer.resting_duration_s == pytest.approx(0.2 - 0.019)

    def test_scaled_to_too_short_period_raises(self):
        with pytest.raises(ScheduleError):
            simple_schedule().scaled_to_period(0.001)

    def test_describe_lists_phases(self):
        text = simple_schedule().describe()
        for name in ("acquire", "compute", "transmit", "sleep"):
            assert name in text
