"""Tests for the per-block duty-cycle report."""

from __future__ import annotations

import pytest

from repro.conditions.operating_point import OperatingPoint
from repro.errors import ScheduleError
from repro.timing.duty_cycle import (
    SHORT_DUTY_CYCLE_THRESHOLD,
    duty_cycle_report,
)


@pytest.fixture
def report(node, database, point):
    schedule = node.schedule_for(point.speed_kmh, revolution_index=0)
    return duty_cycle_report(schedule, node.adapt_database(database), point)


class TestReportStructure:
    def test_one_entry_per_block(self, report, node):
        assert set(report.blocks) == set(node.block_names())

    def test_period_matches_speed(self, report, node, point):
        assert report.period_s == pytest.approx(
            node.wheel.revolution_period_s(point.speed_kmh)
        )

    def test_for_block_lookup(self, report):
        assert report.for_block("rf_tx").block == "rf_tx"

    def test_for_missing_block_raises(self, report):
        with pytest.raises(ScheduleError):
            report.for_block("gpu")

    def test_total_energy_positive(self, report):
        assert report.total_energy_j() > 0.0


class TestDutyCycleValues:
    def test_duty_cycles_are_fractions(self, report):
        for entry in report.entries:
            assert 0.0 <= entry.duty_cycle <= 1.0

    def test_transmitter_has_short_duty_cycle(self, report):
        tx = report.for_block("rf_tx")
        assert tx.duty_cycle < SHORT_DUTY_CYCLE_THRESHOLD
        assert tx.is_short_duty_cycle

    def test_always_on_lf_receiver_has_full_duty_cycle(self, report):
        # The LF receiver rests in its active mode, so it is active all round.
        assert report.for_block("lf_rx").duty_cycle == pytest.approx(1.0)

    def test_active_time_consistent_with_duty_cycle(self, report):
        for entry in report.entries:
            assert entry.active_time_s == pytest.approx(
                entry.duty_cycle * entry.period_s
            )

    def test_short_duty_cycle_blocks_subset_of_blocks(self, report):
        assert set(report.short_duty_cycle_blocks()) <= set(report.blocks)

    def test_transmit_duty_cycle_grows_with_speed(self, node, database):
        """The paper: the TX duty cycle varies with cruising speed."""
        adapted = node.adapt_database(database)
        slow_point = OperatingPoint(speed_kmh=30.0)
        fast_point = OperatingPoint(speed_kmh=150.0)
        slow = duty_cycle_report(
            node.schedule_for(30.0, revolution_index=0), adapted, slow_point
        )
        fast = duty_cycle_report(
            node.schedule_for(150.0, revolution_index=0), adapted, fast_point
        )
        assert fast.for_block("rf_tx").duty_cycle > slow.for_block("rf_tx").duty_cycle


class TestEnergySplit:
    def test_block_energies_are_non_negative(self, report):
        for entry in report.entries:
            assert entry.dynamic_energy_j >= 0.0
            assert entry.static_energy_j >= 0.0

    def test_total_is_dynamic_plus_static(self, report):
        for entry in report.entries:
            assert entry.total_energy_j == pytest.approx(
                entry.dynamic_energy_j + entry.static_energy_j
            )

    def test_static_fraction_in_unit_interval(self, report):
        for entry in report.entries:
            assert 0.0 <= entry.static_energy_fraction <= 1.0

    def test_radio_energy_is_mostly_dynamic(self, report):
        tx = report.for_block("rf_tx")
        assert tx.static_energy_fraction < 0.5

    def test_hot_condition_raises_static_fraction(self, node, database):
        adapted = node.adapt_database(database)
        schedule = node.schedule_for(60.0, revolution_index=0)
        nominal = duty_cycle_report(schedule, adapted, OperatingPoint(speed_kmh=60.0))
        hot = duty_cycle_report(
            schedule, adapted, OperatingPoint(speed_kmh=60.0, temperature_c=125.0)
        )
        assert (
            hot.for_block("mcu").static_energy_fraction
            > nominal.for_block("mcu").static_energy_fraction
        )

    def test_report_total_matches_sum_of_entries(self, report):
        assert report.total_energy_j() == pytest.approx(
            sum(entry.total_energy_j for entry in report.entries)
        )
